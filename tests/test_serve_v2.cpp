// The serve protocol v2 wall: keep-alive pipelined sessions, per-client
// fairness, the persistent result cache, and the lint verb — pinned
// against real sockets on an in-process Server.
//
// The two acceptance differentials live here:
//  * KeepAliveDifferential: K pipelined requests on ONE connection are
//    byte-identical (modulo the echoed "id") to K one-shot v1-style
//    connections, including the cache-hit replay.
//  * RestartReplaysWarm: a daemon restarted on the same --cache-dir
//    answers a previously synthesized request with cache_hit:true and a
//    byte-for-byte identical result document.
#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "casestudies/token_ring.hpp"
#include "lang/printer.hpp"
#include "obs/json.hpp"
#include "serve/fairness.hpp"
#include "serve/frame.hpp"
#include "serve/persist.hpp"
#include "serve/server.hpp"

namespace {

using namespace stsyn;
namespace fs = std::filesystem;

/// A keep-alive client: the connection stays open across any number of
/// frames, like a real v2 client. Blocking reads (the tests always know
/// how many responses they are owed).
class PipelinedClient {
 public:
  explicit PipelinedClient(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    connected_ = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                           sizeof addr) == 0;
  }
  ~PipelinedClient() { close(); }

  PipelinedClient(const PipelinedClient&) = delete;
  PipelinedClient& operator=(const PipelinedClient&) = delete;

  [[nodiscard]] bool connected() const { return connected_; }
  [[nodiscard]] int fd() const { return fd_; }

  void send(const std::string& payload) { serve::writeFrame(fd_, payload); }

  /// Raw bytes, bypassing the framing helper — for adversarial writes.
  void sendRaw(std::string_view bytes) {
    std::size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off,
                               MSG_NOSIGNAL);
      ASSERT_GT(n, 0);
      off += static_cast<std::size_t>(n);
    }
  }

  [[nodiscard]] std::string receive() {
    std::string payload;
    EXPECT_TRUE(serve::readFrame(fd_, payload));
    return payload;
  }

  /// Returns false on clean EOF instead of failing the test.
  [[nodiscard]] bool tryReceive(std::string& payload) {
    try {
      return serve::readFrame(fd_, payload);
    } catch (const std::exception&) {
      return false;  // connection torn down mid-frame also counts as EOF
    }
  }

  /// Half-close: no more requests, but responses can still arrive.
  void shutdownWrite() { ::shutdown(fd_, SHUT_WR); }

  void close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
};

obs::JsonValue parsed(const std::string& payload) {
  std::string error;
  const auto doc = obs::parseJson(payload, &error);
  EXPECT_TRUE(doc.has_value()) << error << "\npayload: " << payload;
  return doc.value_or(obs::JsonValue{});
}

/// tokenRing() names its protocol "token-ring", which the .stsyn grammar
/// cannot re-read; rename before printing so the text parses.
std::string tokenRingSource(int processes, int domain) {
  protocol::Protocol p = casestudies::tokenRing(processes, domain);
  p.name = "token_ring_serve_v2";
  return lang::printProtocol(p);
}

/// Builds a synthesize request; id < 0 means "no id field".
std::string synthesizeRequest(const std::string& source, long long id = -1,
                              const std::string& optionsJson = "") {
  std::ostringstream out;
  out << '{';
  if (id >= 0) out << "\"id\":" << id << ',';
  out << R"("verb":"synthesize","protocol":)" << obs::jsonQuote(source);
  if (!optionsJson.empty()) out << R"(,"options":)" << optionsJson;
  out << '}';
  return out.str();
}

std::string lintRequest(const std::string& source, long long id = -1) {
  std::ostringstream out;
  out << '{';
  if (id >= 0) out << "\"id\":" << id << ',';
  out << R"("verb":"lint","protocol":)" << obs::jsonQuote(source) << '}';
  return out.str();
}

/// Strips the leading "id" field: everything from the "ok" key on is
/// id-independent by construction (the envelope renders id first).
std::string moduloId(const std::string& payload) {
  const std::size_t at = payload.find("\"ok\"");
  EXPECT_NE(at, std::string::npos) << payload;
  return "{" + payload.substr(at);
}

/// Replaces the values of wall-clock fields ("ranking_seconds":1.2e-05)
/// with a fixed token. Two separately-synthesized runs of the same input
/// agree on every byte EXCEPT measured durations; the differential wants
/// to pin exactly that.
std::string moduloTimings(std::string payload) {
  std::size_t at = 0;
  while ((at = payload.find("_seconds\":", at)) != std::string::npos) {
    const std::size_t valueStart = at + 10;
    std::size_t valueEnd = valueStart;
    while (valueEnd < payload.size() &&
           (std::isdigit(static_cast<unsigned char>(payload[valueEnd])) !=
                0 ||
            payload[valueEnd] == '.' || payload[valueEnd] == 'e' ||
            payload[valueEnd] == '-' || payload[valueEnd] == '+')) {
      ++valueEnd;
    }
    payload.replace(valueStart, valueEnd - valueStart, "T");
    at = valueStart;
  }
  return payload;
}

struct RunningServer {
  serve::Server server;

  explicit RunningServer(serve::ServeOptions options) : server(options) {
    std::string error;
    EXPECT_TRUE(server.start(error)) << error;
  }
  ~RunningServer() { server.stop(); }

  [[nodiscard]] int port() const { return server.port(); }
};

serve::ServeOptions smallServer(unsigned workers = 2) {
  serve::ServeOptions o;
  o.workers = workers;
  o.queueCapacity = 8;
  o.cacheCapacity = 16;
  return o;
}

/// A scratch directory removed on scope exit.
struct TempDir {
  fs::path path;
  TempDir() {
    path = fs::temp_directory_path() /
           ("stsyn_serve_v2_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter()++));
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  static std::atomic<int>& counter() {
    static std::atomic<int> c{0};
    return c;
  }
};

// ---------------------------------------------------------------------------
// FairQueue scheduling policy (pure unit tests — no sockets).
// ---------------------------------------------------------------------------

TEST(FairQueue, RoundRobinAcrossClients) {
  serve::FairQueue<int> q(16, 8);
  // Client 1 floods; clients 2 and 3 each queue one job afterwards.
  EXPECT_EQ(q.push(1, 10), serve::Admission::Admitted);
  EXPECT_EQ(q.push(1, 11), serve::Admission::Admitted);
  EXPECT_EQ(q.push(1, 12), serve::Admission::Admitted);
  EXPECT_EQ(q.push(2, 20), serve::Admission::Admitted);
  EXPECT_EQ(q.push(3, 30), serve::Admission::Admitted);
  EXPECT_EQ(q.depth(), 5u);

  int job = 0;
  std::uint64_t client = 0;
  std::vector<int> order;
  while (q.pop(job, client)) order.push_back(job);
  // The flooder gets every third slot, not all of the first three; each
  // client's own jobs stay FIFO.
  EXPECT_EQ(order, (std::vector<int>{10, 20, 30, 11, 12}));
  EXPECT_EQ(q.depth(), 0u);
}

TEST(FairQueue, PerClientCapCountsQueuedPlusRunning) {
  serve::FairQueue<int> q(16, 2);
  EXPECT_EQ(q.push(7, 1), serve::Admission::Admitted);
  EXPECT_EQ(q.push(7, 2), serve::Admission::Admitted);
  EXPECT_EQ(q.push(7, 3), serve::Admission::ClientCapped);
  EXPECT_EQ(q.inflight(7), 2u);

  // Popping does NOT release the charge: the job is running now.
  int job = 0;
  std::uint64_t client = 0;
  ASSERT_TRUE(q.pop(job, client));
  EXPECT_EQ(q.push(7, 3), serve::Admission::ClientCapped);
  EXPECT_EQ(q.inflight(7), 2u);

  // finish() releases it; the client has room again.
  q.finish(7);
  EXPECT_EQ(q.inflight(7), 1u);
  EXPECT_EQ(q.push(7, 3), serve::Admission::Admitted);
}

TEST(FairQueue, CapIsCheckedBeforeCapacity) {
  serve::FairQueue<int> q(1, 1);
  EXPECT_EQ(q.push(1, 10), serve::Admission::Admitted);
  // Queue is full AND client 1 is at cap: the client-specific verdict
  // wins, because "finish something first" is actionable and "retry
  // later" is not, for this client.
  EXPECT_EQ(q.push(1, 11), serve::Admission::ClientCapped);
  // A different client under its cap sees the global condition.
  EXPECT_EQ(q.push(2, 20), serve::Admission::QueueFull);
}

TEST(FairQueue, FinishForgetsIdleClients) {
  serve::FairQueue<int> q(8, 4);
  for (std::uint64_t c = 1; c <= 100; ++c) {
    ASSERT_EQ(q.push(c, static_cast<int>(c)), serve::Admission::Admitted);
    int job = 0;
    std::uint64_t client = 0;
    ASSERT_TRUE(q.pop(job, client));
    q.finish(client);
    EXPECT_EQ(q.inflight(c), 0u);  // no tombstone accumulates per client
  }
  EXPECT_EQ(q.depth(), 0u);
}

TEST(FairQueue, DrainReturnsEverythingQueued) {
  serve::FairQueue<int> q(16, 8);
  ASSERT_EQ(q.push(1, 10), serve::Admission::Admitted);
  ASSERT_EQ(q.push(2, 20), serve::Admission::Admitted);
  ASSERT_EQ(q.push(1, 11), serve::Admission::Admitted);
  const std::vector<int> leftovers = q.drain();
  EXPECT_EQ(leftovers.size(), 3u);
  EXPECT_EQ(q.depth(), 0u);
  int job = 0;
  std::uint64_t client = 0;
  EXPECT_FALSE(q.pop(job, client));
}

// ---------------------------------------------------------------------------
// Keep-alive sessions and pipelining.
// ---------------------------------------------------------------------------

TEST(ServeV2, ConnectionSurvivesManySequentialRequests) {
  RunningServer rs(smallServer());
  PipelinedClient c(rs.port());
  ASSERT_TRUE(c.connected());
  for (int i = 0; i < 10; ++i) {
    c.send(R"({"verb":"ping"})");
    auto pong = parsed(c.receive());
    EXPECT_TRUE(pong.find("ok")->boolean);
    EXPECT_EQ(pong.find("verb")->str, "pong");
  }
  // One connection, ten requests.
  EXPECT_EQ(rs.server.counters().sessions.load(), 1u);
  EXPECT_EQ(rs.server.counters().requests.load(), 10u);
}

TEST(ServeV2, PipelinedRequestsCompleteAndCorrelateById) {
  RunningServer rs(smallServer());
  PipelinedClient c(rs.port());
  ASSERT_TRUE(c.connected());

  // One write carrying several frames; ids correlate the responses, which
  // may legally arrive in any order (two workers race).
  std::string burst;
  burst += serve::encodeFrame(R"({"id":1,"verb":"ping"})");
  burst += serve::encodeFrame(synthesizeRequest(tokenRingSource(3, 2), 2));
  burst += serve::encodeFrame(R"({"id":"three","verb":"ping"})");
  burst += serve::encodeFrame(lintRequest(tokenRingSource(3, 2), 4));
  c.sendRaw(burst);

  std::map<std::string, obs::JsonValue> byId;
  for (int i = 0; i < 4; ++i) {
    const std::string payload = c.receive();
    auto doc = parsed(payload);
    const auto* id = doc.find("id");
    ASSERT_NE(id, nullptr) << payload;
    // The id is the FIRST field of the envelope.
    EXPECT_EQ(payload.find("{\"id\":"), 0u) << payload;
    const std::string key = id->kind == obs::JsonValue::Kind::String
                                ? id->str
                                : std::to_string(
                                      static_cast<long long>(id->number));
    byId.emplace(key, std::move(doc));
  }
  ASSERT_EQ(byId.size(), 4u);
  EXPECT_EQ(byId.at("1").find("verb")->str, "pong");
  EXPECT_TRUE(byId.at("2").find("ok")->boolean);
  EXPECT_TRUE(byId.at("2").find("result")->find("success")->boolean);
  EXPECT_EQ(byId.at("three").find("verb")->str, "pong");
  EXPECT_EQ(byId.at("4").find("verb")->str, "lint");
}

TEST(ServeV2, BadIdShapesAreRejected) {
  RunningServer rs(smallServer());
  PipelinedClient c(rs.port());
  ASSERT_TRUE(c.connected());
  for (const char* request : {
           R"({"id":-1,"verb":"ping"})",
           R"({"id":1.5,"verb":"ping"})",
           R"({"id":[1],"verb":"ping"})",
           R"({"id":{"a":1},"verb":"ping"})",
           R"({"id":true,"verb":"ping"})",
       }) {
    c.send(request);
    auto doc = parsed(c.receive());
    EXPECT_FALSE(doc.find("ok")->boolean) << request;
    EXPECT_EQ(doc.find("kind")->str, "invalid_request") << request;
  }
  // The session survives its own invalid requests.
  c.send(R"({"id":7,"verb":"ping"})");
  auto pong = parsed(c.receive());
  EXPECT_EQ(pong.find("id")->number, 7);
  EXPECT_EQ(pong.find("verb")->str, "pong");
}

TEST(ServeV2, ErrorResponsesEchoTheRequestId) {
  RunningServer rs(smallServer());
  PipelinedClient c(rs.port());
  ASSERT_TRUE(c.connected());
  c.send(R"({"id":"err-1","verb":"synthesize"})");
  const std::string payload = c.receive();
  auto doc = parsed(payload);
  EXPECT_EQ(doc.find("id")->str, "err-1");
  EXPECT_EQ(doc.find("kind")->str, "invalid_request");
  EXPECT_EQ(payload.find(R"({"id":"err-1",)"), 0u) << payload;
}

// The acceptance differential: one keep-alive session pipelining K mixed
// requests produces, modulo the echoed id, the same K response byte
// strings a fresh daemon produces for K one-shot connections.
TEST(ServeV2, KeepAliveDifferentialAgainstOneShotConnections) {
  const std::string ring = tokenRingSource(3, 2);
  const std::string ringBig = tokenRingSource(4, 2);
  const std::vector<std::string> plainRequests = {
      R"({"verb":"ping"})",
      synthesizeRequest(ring),      // cache miss
      synthesizeRequest(ring),      // cache hit: replay
      lintRequest(ring),
      synthesizeRequest(ringBig),   // different key: miss
      synthesizeRequest(ring, -1, R"({"weak":true})"),  // different options
  };

  // One worker on both sides so hit/miss sequencing is deterministic.
  std::vector<std::string> oneShot;
  {
    RunningServer rs(smallServer(/*workers=*/1));
    for (const std::string& request : plainRequests) {
      PipelinedClient c(rs.port());
      ASSERT_TRUE(c.connected());
      c.send(request);
      oneShot.push_back(c.receive());
    }
  }

  std::vector<std::string> pipelined(plainRequests.size());
  {
    RunningServer rs(smallServer(/*workers=*/1));
    PipelinedClient c(rs.port());
    ASSERT_TRUE(c.connected());
    std::string burst;
    for (std::size_t i = 0; i < plainRequests.size(); ++i) {
      // Same request, plus an id: {"id":N,...rest}.
      std::string withId = "{\"id\":" + std::to_string(i) + "," +
                           plainRequests[i].substr(1);
      burst += serve::encodeFrame(withId);
    }
    c.sendRaw(burst);
    for (std::size_t i = 0; i < plainRequests.size(); ++i) {
      const std::string payload = c.receive();
      auto doc = parsed(payload);
      const auto* id = doc.find("id");
      ASSERT_NE(id, nullptr) << payload;
      pipelined.at(static_cast<std::size_t>(id->number)) = payload;
    }
  }

  for (std::size_t i = 0; i < plainRequests.size(); ++i) {
    EXPECT_EQ(moduloTimings(moduloId(pipelined[i])),
              moduloTimings(oneShot[i]))
        << "request " << i << " diverged: " << plainRequests[i];
  }
}

// ---------------------------------------------------------------------------
// Adversarial framing against a live session.
// ---------------------------------------------------------------------------

TEST(ServeV2, ByteAtATimeWritesStillParse) {
  RunningServer rs(smallServer());
  PipelinedClient c(rs.port());
  ASSERT_TRUE(c.connected());
  const std::string wire = serve::encodeFrame(R"({"id":1,"verb":"ping"})");
  for (const char byte : wire) {
    c.sendRaw(std::string_view(&byte, 1));
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  auto pong = parsed(c.receive());
  EXPECT_EQ(pong.find("verb")->str, "pong");
  // The trickled session is a normal session afterwards.
  c.send(R"({"verb":"stats"})");
  EXPECT_TRUE(parsed(c.receive()).find("ok")->boolean);
}

TEST(ServeV2, TornHeaderAfterEarlierFramesIsHarmless) {
  RunningServer rs(smallServer());
  {
    PipelinedClient c(rs.port());
    ASSERT_TRUE(c.connected());
    // Two complete frames, fully answered...
    c.send(R"({"verb":"ping"})");
    EXPECT_TRUE(parsed(c.receive()).find("ok")->boolean);
    c.send(R"({"verb":"ping"})");
    EXPECT_TRUE(parsed(c.receive()).find("ok")->boolean);
    // ...then 2 bytes of a third header, and the client vanishes.
    c.sendRaw(std::string_view("\x00\x00", 2));
  }
  // The daemon neither crashed nor leaked the half-frame into anything:
  // a fresh client gets normal service.
  PipelinedClient after(rs.port());
  ASSERT_TRUE(after.connected());
  after.send(R"({"verb":"ping"})");
  EXPECT_TRUE(parsed(after.receive()).find("ok")->boolean);
  EXPECT_EQ(rs.server.counters().requests.load(), 3u);  // torn frame ≠ request
}

TEST(ServeV2, OversizedLengthMidSessionClosesThatSessionOnly) {
  RunningServer rs(smallServer());
  PipelinedClient victim(rs.port());
  ASSERT_TRUE(victim.connected());
  victim.send(R"({"verb":"ping"})");
  EXPECT_TRUE(parsed(victim.receive()).find("ok")->boolean);

  // Frame 2 declares 128 MiB. The daemon answers with an error frame and
  // drops the connection — the stream past a hostile header is garbage.
  const std::uint32_t huge = 128u << 20;
  char header[4] = {static_cast<char>(huge >> 24),
                    static_cast<char>((huge >> 16) & 0xFF),
                    static_cast<char>((huge >> 8) & 0xFF),
                    static_cast<char>(huge & 0xFF)};
  victim.sendRaw(std::string_view(header, 4));

  std::string payload;
  if (victim.tryReceive(payload)) {
    auto doc = parsed(payload);
    EXPECT_FALSE(doc.find("ok")->boolean);
    EXPECT_EQ(doc.find("kind")->str, "invalid_request");
  }
  // Either way the connection is now closed.
  EXPECT_FALSE(victim.tryReceive(payload));

  // Other sessions were never affected.
  PipelinedClient bystander(rs.port());
  ASSERT_TRUE(bystander.connected());
  bystander.send(R"({"verb":"ping"})");
  EXPECT_TRUE(parsed(bystander.receive()).find("ok")->boolean);
}

TEST(ServeV2, HeldOpenIdleConnectionDoesNotStallOthers) {
  RunningServer rs(smallServer());
  // A slow-loris connection: opened, never writes a byte.
  PipelinedClient loris(rs.port());
  ASSERT_TRUE(loris.connected());

  // Everyone else gets immediate service while it sits there.
  for (int i = 0; i < 5; ++i) {
    PipelinedClient c(rs.port());
    ASSERT_TRUE(c.connected());
    c.send(R"({"verb":"ping"})");
    EXPECT_TRUE(parsed(c.receive()).find("ok")->boolean);
  }
  // And the idle connection is still alive, not reaped.
  loris.send(R"({"verb":"ping"})");
  EXPECT_TRUE(parsed(loris.receive()).find("ok")->boolean);
}

TEST(ServeV2, HalfClosedClientStillReceivesItsResponses) {
  RunningServer rs(smallServer());
  PipelinedClient c(rs.port());
  ASSERT_TRUE(c.connected());
  c.send(synthesizeRequest(tokenRingSource(3, 2), 1));
  c.shutdownWrite();  // EOF reaches the daemon before the job completes
  auto doc = parsed(c.receive());
  EXPECT_TRUE(doc.find("ok")->boolean);
  EXPECT_TRUE(doc.find("result")->find("success")->boolean);
}

TEST(ServeV2, ClientKilledMidJobLeavesWorkerHealthy) {
  RunningServer rs(smallServer());
  {
    PipelinedClient doomed(rs.port());
    ASSERT_TRUE(doomed.connected());
    doomed.send(synthesizeRequest(tokenRingSource(4, 2), 1));
    // Destructor closes the socket immediately; the worker is (or soon
    // will be) mid-synthesis with nobody to answer.
  }
  // The job still runs to completion (counters reconcile) and the daemon
  // keeps serving.
  for (int i = 0; i < 400; ++i) {
    if (rs.server.counters().completed.load() >= 1) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(rs.server.counters().completed.load(), 1u);
  PipelinedClient c(rs.port());
  ASSERT_TRUE(c.connected());
  c.send(R"({"verb":"ping"})");
  EXPECT_TRUE(parsed(c.receive()).find("ok")->boolean);
}

// ---------------------------------------------------------------------------
// Fairness on the wire.
// ---------------------------------------------------------------------------

TEST(ServeV2, PerClientCapAndQueueFullAreDistinguished) {
  serve::ServeOptions options;
  options.workers = 1;
  options.queueCapacity = 3;
  options.cacheCapacity = 8;
  options.maxInflight = 2;
  RunningServer rs(options);
  rs.server.holdJobs(true);

  const std::string source = tokenRingSource(3, 2);

  PipelinedClient greedy(rs.port());
  ASSERT_TRUE(greedy.connected());
  greedy.send(synthesizeRequest(source, 1));
  greedy.send(synthesizeRequest(source, 2));
  for (int i = 0; i < 200 && rs.server.queueDepth() < 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(rs.server.queueDepth(), 2u);

  // Request 3 breaches the greedy client's own cap — rejected with the
  // client-specific reason even though the queue still has room.
  greedy.send(synthesizeRequest(source, 3));
  auto capped = parsed(greedy.receive());
  EXPECT_FALSE(capped.find("ok")->boolean);
  EXPECT_EQ(capped.find("id")->number, 3);
  EXPECT_EQ(capped.find("kind")->str, "rejected");
  EXPECT_EQ(capped.find("reason")->str, "client_capped");

  // A second client fills the last global slot...
  PipelinedClient other(rs.port());
  ASSERT_TRUE(other.connected());
  other.send(synthesizeRequest(source, 10));
  for (int i = 0; i < 200 && rs.server.queueDepth() < 3; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(rs.server.queueDepth(), 3u);

  // ...so its next request — the client itself is under its cap — sees
  // the global condition.
  other.send(synthesizeRequest(source, 11));
  auto full = parsed(other.receive());
  EXPECT_EQ(full.find("kind")->str, "rejected");
  EXPECT_EQ(full.find("reason")->str, "queue_full");

  EXPECT_EQ(rs.server.counters().rejectedCapped.load(), 1u);
  EXPECT_EQ(rs.server.counters().rejectedQueueFull.load(), 1u);
  EXPECT_EQ(rs.server.counters().rejected.load(), 2u);

  // Release the hold: all three admitted jobs are answered.
  rs.server.holdJobs(false);
  EXPECT_TRUE(parsed(greedy.receive()).find("ok")->boolean);
  EXPECT_TRUE(parsed(greedy.receive()).find("ok")->boolean);
  EXPECT_TRUE(parsed(other.receive()).find("ok")->boolean);
}

// ---------------------------------------------------------------------------
// The lint verb.
// ---------------------------------------------------------------------------

TEST(ServeV2, LintVerbReturnsSarif) {
  RunningServer rs(smallServer());
  PipelinedClient c(rs.port());
  ASSERT_TRUE(c.connected());

  c.send(lintRequest(tokenRingSource(3, 2), 1));
  auto doc = parsed(c.receive());
  ASSERT_TRUE(doc.find("ok")->boolean);
  EXPECT_EQ(doc.find("verb")->str, "lint");
  const auto* sarif = doc.find("sarif");
  ASSERT_NE(sarif, nullptr);
  ASSERT_TRUE(sarif->isObject());
  EXPECT_EQ(sarif->find("version")->str, "2.1.0");
  ASSERT_NE(sarif->find("runs"), nullptr);

  // Lint requests are answered inline — never queued, never cached.
  EXPECT_EQ(rs.server.counters().lint.load(), 1u);
  EXPECT_EQ(rs.server.counters().synthesize.load(), 0u);
  EXPECT_EQ(rs.server.counters().cacheMisses.load(), 0u);

  // Unknown lint options are rejected like synthesize options.
  c.send(R"({"verb":"lint","protocol":"x","options":{"portfolio":2}})");
  auto bad = parsed(c.receive());
  EXPECT_EQ(bad.find("kind")->str, "invalid_request");

  // Unparseable source is still a lint RESULT (SARIF carries the parse
  // diagnostic), not a protocol error: linting broken files is the job.
  c.send(lintRequest("protocol oops", 2));
  auto broken = parsed(c.receive());
  ASSERT_TRUE(broken.find("ok")->boolean) << "lint must answer broken input";
  EXPECT_EQ(broken.find("exit_code")->number, 1);
}

// ---------------------------------------------------------------------------
// Persistent result cache.
// ---------------------------------------------------------------------------

TEST(PersistV2, DocumentRoundTripsArbitraryBytes) {
  const std::string key = "key with spaces\nand\nnewlines \x01\xff";
  const std::string result = std::string("result\0with NUL", 15);
  std::ostringstream os;
  serve::saveResultDocument(os, key, result);
  std::istringstream is(os.str());
  std::string keyBack;
  std::string resultBack;
  serve::loadResultDocument(is, keyBack, resultBack);
  EXPECT_EQ(keyBack, key);
  EXPECT_EQ(resultBack, result);
}

TEST(PersistV2, ByteChopCorpusAlwaysRejects) {
  std::ostringstream os;
  serve::saveResultDocument(os, "canonical-key", "{\"ok\":true}");
  const std::string good = os.str();
  // Every proper prefix must be rejected as truncated — no prefix length
  // may be read as a shorter valid document.
  for (std::size_t len = 0; len < good.size(); ++len) {
    std::istringstream is(good.substr(0, len));
    std::string key;
    std::string result;
    EXPECT_THROW(serve::loadResultDocument(is, key, result),
                 std::runtime_error)
        << "prefix of length " << len << " was accepted";
  }
  // And one extra byte is trailing garbage, also rejected.
  std::istringstream is(good + "x");
  std::string key;
  std::string result;
  EXPECT_THROW(serve::loadResultDocument(is, key, result),
               std::runtime_error);
}

TEST(PersistV2, TokenMutationCorpusAlwaysRejects) {
  const std::string docText = [] {
    std::ostringstream os;
    serve::saveResultDocument(os, "kk", "rrrr");
    return os.str();
  }();  // "stsynres 1 2 4\nkkrrrr"
  const std::vector<std::string> mutants = {
      "stsynres 2 2 4\nkkrrrr",          // future version
      "stsynRES 1 2 4\nkkrrrr",          // wrong magic
      "stsynres 1 3 4\nkkrrrr",          // key length lies long
      "stsynres 1 2 9999999999999999999999 \nkkrrrr",  // absurd size
      "stsynres 1 2 4 kkrrrr",           // missing newline terminator
      "stsynres 1 -2 4\nkkrrrr",         // negative size
      "",                                 // empty file
      "stsynres",                         // header alone
  };
  for (const std::string& mutant : mutants) {
    std::istringstream is(mutant);
    std::string key;
    std::string result;
    EXPECT_THROW(serve::loadResultDocument(is, key, result),
                 std::runtime_error)
        << "mutant accepted: " << mutant;
  }
}

TEST(PersistV2, WriteIsAtomicAndLoadSkipsForeignFiles) {
  TempDir dir;
  ASSERT_TRUE(serve::writeCacheEntry(dir.path.string(), "k1", "r1"));
  ASSERT_TRUE(serve::writeCacheEntry(dir.path.string(), "k2", "r2"));
  // Distractors: a leftover temp file and an unrelated file.
  { std::ofstream(dir.path / ".tmp-999-0.stsynres") << "partial"; }
  { std::ofstream(dir.path / "README.txt") << "not an entry"; }

  std::map<std::string, std::string> loaded;
  std::size_t rejected = 99;
  const std::size_t n = serve::loadCacheDir(
      dir.path.string(),
      [&](std::string key, std::string result) {
        loaded[std::move(key)] = std::move(result);
      },
      &rejected);
  EXPECT_EQ(n, 2u);
  EXPECT_EQ(rejected, 0u);  // skipped files are not "rejected entries"
  EXPECT_EQ(loaded.at("k1"), "r1");
  EXPECT_EQ(loaded.at("k2"), "r2");

  // Same key rewritten: still one file, new content.
  ASSERT_TRUE(serve::writeCacheEntry(dir.path.string(), "k1", "r1-v2"));
  loaded.clear();
  serve::loadCacheDir(
      dir.path.string(),
      [&](std::string key, std::string result) {
        loaded[std::move(key)] = std::move(result);
      },
      nullptr);
  EXPECT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded.at("k1"), "r1-v2");
}

// The second acceptance differential: restart the daemon on the same
// cache directory and replay a previously synthesized result warm,
// byte-for-byte.
TEST(PersistV2, RestartReplaysWarmByteForByte) {
  TempDir dir;
  const std::string source = tokenRingSource(3, 2);

  std::string coldResponse;
  {
    serve::ServeOptions options = smallServer();
    options.cacheDir = dir.path.string();
    RunningServer rs(options);
    EXPECT_EQ(rs.server.cacheEntriesLoaded(), 0u);
    PipelinedClient c(rs.port());
    ASSERT_TRUE(c.connected());
    c.send(synthesizeRequest(source));
    coldResponse = c.receive();
    auto doc = parsed(coldResponse);
    ASSERT_TRUE(doc.find("ok")->boolean) << coldResponse;
    EXPECT_FALSE(doc.find("cache_hit")->boolean);
  }  // daemon fully stopped

  serve::ServeOptions options = smallServer();
  options.cacheDir = dir.path.string();
  RunningServer restarted(options);
  EXPECT_EQ(restarted.server.cacheEntriesLoaded(), 1u);
  EXPECT_EQ(restarted.server.cacheEntriesRejected(), 0u);

  PipelinedClient c(restarted.port());
  ASSERT_TRUE(c.connected());
  c.send(synthesizeRequest(source));
  const std::string warmResponse = c.receive();
  auto doc = parsed(warmResponse);
  ASSERT_TRUE(doc.find("ok")->boolean) << warmResponse;
  EXPECT_TRUE(doc.find("cache_hit")->boolean);
  EXPECT_EQ(restarted.server.counters().cacheHits.load(), 1u);
  EXPECT_EQ(restarted.server.counters().cacheMisses.load(), 0u);

  // The result fragment — everything after the cache_hit flag — is the
  // stored document, byte for byte.
  const auto fragmentOf = [](const std::string& payload) {
    const std::size_t at = payload.find("\"result\":");
    EXPECT_NE(at, std::string::npos);
    return payload.substr(at);
  };
  EXPECT_EQ(fragmentOf(coldResponse), fragmentOf(warmResponse));
}

TEST(PersistV2, CorruptEntriesOnDiskDegradeToMisses) {
  TempDir dir;
  const std::string source = tokenRingSource(3, 2);

  {
    serve::ServeOptions options = smallServer();
    options.cacheDir = dir.path.string();
    RunningServer rs(options);
    PipelinedClient c(rs.port());
    ASSERT_TRUE(c.connected());
    c.send(synthesizeRequest(source));
    ASSERT_TRUE(parsed(c.receive()).find("ok")->boolean);
  }

  // Chop the single entry file in half: classic torn write / bad disk.
  fs::path entry;
  for (const auto& it : fs::directory_iterator(dir.path)) {
    if (it.path().extension() == ".stsynres") entry = it.path();
  }
  ASSERT_FALSE(entry.empty());
  const auto size = fs::file_size(entry);
  fs::resize_file(entry, size / 2);

  serve::ServeOptions options = smallServer();
  options.cacheDir = dir.path.string();
  RunningServer rs(options);
  EXPECT_EQ(rs.server.cacheEntriesLoaded(), 0u);
  EXPECT_EQ(rs.server.cacheEntriesRejected(), 1u);

  // The request misses (fresh synthesis), then re-persists a good entry.
  PipelinedClient c(rs.port());
  ASSERT_TRUE(c.connected());
  c.send(synthesizeRequest(source));
  auto doc = parsed(c.receive());
  ASSERT_TRUE(doc.find("ok")->boolean);
  EXPECT_FALSE(doc.find("cache_hit")->boolean);
  EXPECT_GT(fs::file_size(entry), size / 2);
}

// ---------------------------------------------------------------------------
// Counter reconciliation after a mixed concurrent soak.
// ---------------------------------------------------------------------------

TEST(ServeV2, CountersReconcileAfterMixedSoak) {
  serve::ServeOptions options;
  options.workers = 3;
  options.queueCapacity = 4;
  options.cacheCapacity = 8;
  options.maxInflight = 2;
  RunningServer rs(options);

  const std::vector<std::string> sources = {tokenRingSource(3, 2),
                                            tokenRingSource(4, 2)};
  constexpr int kClients = 4;
  constexpr int kRounds = 6;

  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t] {
      PipelinedClient c(rs.port());
      if (!c.connected()) {
        failures.fetch_add(1);
        return;
      }
      int sent = 0;
      for (int round = 0; round < kRounds; ++round) {
        // A mixed burst per round: inline verbs, lint, synthesis with
        // repeats (cache hits), malformed requests, bad options. Some
        // synthesize calls will be fairness-capped — that is the point.
        c.send(R"({"verb":"ping"})");
        ++sent;
        c.send(synthesizeRequest(sources[(t + round) % sources.size()],
                                 round));
        ++sent;
        c.send(lintRequest(sources[0]));
        ++sent;
        c.send(R"({"verb":"stats"})");
        ++sent;
        c.send("not json at all");
        ++sent;
        c.send(R"({"verb":"synthesize","protocol":"protocol oops"})");
        ++sent;
        c.send(
            R"({"verb":"synthesize","protocol":"x","options":{"nope":1}})");
        ++sent;
        // Read this round's responses before the next burst so the
        // pipeline depth stays bounded (and some rounds hit the cache).
        for (; sent > 0; --sent) {
          std::string payload;
          if (!c.tryReceive(payload)) {
            failures.fetch_add(1);
            return;
          }
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  ASSERT_EQ(failures.load(), 0);

  // Every response was delivered, so every counter is final.
  const serve::ServeCounters& n = rs.server.counters();
  const auto total = [](const std::atomic<std::uint64_t>& c) {
    return c.load();
  };
  EXPECT_EQ(total(n.requests), static_cast<std::uint64_t>(kClients) *
                                   kRounds * 7);
  EXPECT_EQ(total(n.requests), total(n.synthesize) + total(n.lint) +
                                   total(n.inlineVerbs) + total(n.invalid));
  EXPECT_EQ(total(n.synthesize), total(n.completed) + total(n.rejected));
  EXPECT_EQ(total(n.rejected),
            total(n.rejectedQueueFull) + total(n.rejectedCapped));
  EXPECT_EQ(total(n.cacheHits) + total(n.cacheMisses), total(n.completed));
  EXPECT_EQ(rs.server.queueDepth(), 0u);
  // The soak exercised real synthesis, and repeats hit the cache.
  EXPECT_GT(total(n.completed), 0u);
  EXPECT_GT(total(n.cacheHits), 0u);
  EXPECT_EQ(total(n.invalid),
            static_cast<std::uint64_t>(kClients) * kRounds * 3);

  // Stats report the same numbers over the wire.
  PipelinedClient c(rs.port());
  ASSERT_TRUE(c.connected());
  c.send(R"({"verb":"stats"})");
  auto stats = parsed(c.receive());
  const auto* counters = stats.find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->find("queue_depth")->number, 0);
  EXPECT_EQ(counters->find("max_inflight")->number, 2);
  EXPECT_EQ(counters->find("queue_capacity")->number, 4);
}

}  // namespace
