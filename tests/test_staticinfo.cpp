// Tests for the BDD-free static-analysis engine (src/analysis/staticinfo)
// and the abstract-interpretation tier (src/analysis/absint): communication
// graph, topology classification, symmetry orbits, the reverse
// Cuthill–McKee variable order, value-set evaluation/narrowing, and the
// schedule orbit signatures the portfolio prunes with. Includes the
// degenerate-protocol corner cases (single process, no read edges,
// self-loop-only locality, statically unsatisfiable guards).
#include <gtest/gtest.h>

#include <numeric>

#include "analysis/absint.hpp"
#include "analysis/staticinfo.hpp"
#include "casestudies/coloring.hpp"
#include "casestudies/token_ring.hpp"
#include "core/schedule.hpp"
#include "protocol/builder.hpp"
#include "util/rng.hpp"

namespace {

using namespace stsyn;
using analysis::AbsBool;
using analysis::AbsEnv;
using analysis::CommGraph;
using analysis::Topology;
using analysis::ValueSet;
using protocol::E;
using protocol::lit;
using protocol::ProtocolBuilder;
using protocol::ref;
using protocol::VarId;

// ---------------------------------------------------------------------------
// Communication graph.
// ---------------------------------------------------------------------------

TEST(CommGraph, TokenRingReadersWritersAndAdjacency) {
  const protocol::Protocol p = casestudies::tokenRing(4, 3);
  const CommGraph g = analysis::buildCommGraph(p);

  ASSERT_EQ(g.readersOf.size(), 4u);
  for (std::size_t v = 0; v < 4; ++v) {
    // x_v is written by P_v only and read by P_v and its successor.
    EXPECT_EQ(g.writersOf[v], (std::vector<std::size_t>{v}));
    const std::size_t succ = (v + 1) % 4;
    std::vector<std::size_t> readers{v, succ};
    std::sort(readers.begin(), readers.end());
    EXPECT_EQ(g.readersOf[v], readers) << "var " << v;
    // Co-read neighbours: the two ring neighbours of x_v.
    std::vector<VarId> nbrs{(v + 3) % 4, succ};
    std::sort(nbrs.begin(), nbrs.end());
    EXPECT_EQ(g.varAdj[v], nbrs) << "var " << v;
    // Process adjacency mirrors the ring.
    std::vector<std::size_t> procNbrs{(v + 3) % 4, succ};
    std::sort(procNbrs.begin(), procNbrs.end());
    EXPECT_EQ(g.procAdj[v], procNbrs) << "proc " << v;
  }
  EXPECT_EQ(g.procEdgeCount(), 4u);
}

TEST(CommGraph, SelfLoopOnlyLocalityProducesNoEdges) {
  // Degenerate: a process whose entire locality is its own variable.
  // Self-communication carries no structure, so all adjacency is empty.
  ProtocolBuilder b("island");
  const VarId x = b.variable("x", 2);
  const VarId y = b.variable("y", 2);
  b.process("P0", {x}, {x});
  b.process("P1", {y}, {y});
  b.invariant(ref(x) == lit(0) && ref(y) == lit(0));
  const protocol::Protocol p = b.build();

  const CommGraph g = analysis::buildCommGraph(p);
  EXPECT_TRUE(g.varAdj[x].empty());
  EXPECT_TRUE(g.varAdj[y].empty());
  EXPECT_TRUE(g.procAdj[0].empty());
  EXPECT_TRUE(g.procAdj[1].empty());
  EXPECT_EQ(g.procEdgeCount(), 0u);
}

// ---------------------------------------------------------------------------
// Topology classification.
// ---------------------------------------------------------------------------

TEST(Topology, RingLineStarAndDegenerates) {
  // Ring: the token ring for any n >= 3.
  {
    const protocol::Protocol p = casestudies::tokenRing(5, 3);
    const CommGraph g = analysis::buildCommGraph(p);
    EXPECT_EQ(analysis::classifyTopology(g, 5), Topology::Ring);
  }
  // Line: a chain of processes each sharing one variable with the next.
  {
    ProtocolBuilder b("chain");
    std::vector<VarId> x;
    for (int i = 0; i < 4; ++i) {
      x.push_back(b.variable("x" + std::to_string(i), 2));
    }
    E inv = ref(x[0]) == lit(0);
    for (int i = 0; i < 4; ++i) {
      std::vector<VarId> reads{x[static_cast<std::size_t>(i)]};
      if (i > 0) reads.push_back(x[static_cast<std::size_t>(i) - 1]);
      b.process("P" + std::to_string(i), reads,
                {x[static_cast<std::size_t>(i)]});
    }
    b.invariant(inv);
    const protocol::Protocol p = b.build();
    const CommGraph g = analysis::buildCommGraph(p);
    EXPECT_EQ(analysis::classifyTopology(g, 4), Topology::Line);
  }
  // Star: one hub variable written by the hub, read by every leaf.
  {
    ProtocolBuilder b("star");
    const VarId hub = b.variable("h", 2);
    std::vector<VarId> leaf;
    for (int i = 0; i < 3; ++i) {
      leaf.push_back(b.variable("l" + std::to_string(i), 2));
    }
    b.process("Hub", {hub}, {hub});
    for (int i = 0; i < 3; ++i) {
      b.process("L" + std::to_string(i),
                {hub, leaf[static_cast<std::size_t>(i)]},
                {leaf[static_cast<std::size_t>(i)]});
    }
    b.invariant(ref(hub) == lit(0));
    const protocol::Protocol p = b.build();
    const CommGraph g = analysis::buildCommGraph(p);
    EXPECT_EQ(analysis::classifyTopology(g, 4), Topology::Star);
  }
  // Single process and empty.
  {
    ProtocolBuilder b("solo");
    const VarId x = b.variable("x", 2);
    b.process("P", {x}, {x});
    b.invariant(ref(x) == lit(0));
    const CommGraph g = analysis::buildCommGraph(b.build());
    EXPECT_EQ(analysis::classifyTopology(g, 1), Topology::SingleProcess);
    EXPECT_EQ(analysis::classifyTopology(CommGraph{}, 0), Topology::Empty);
  }
  // No read edges between processes: disconnected -> General.
  {
    ProtocolBuilder b("islands");
    const VarId x = b.variable("x", 2);
    const VarId y = b.variable("y", 2);
    b.process("P0", {x}, {x});
    b.process("P1", {y}, {y});
    b.invariant(ref(x) == lit(0) && ref(y) == lit(0));
    const CommGraph g = analysis::buildCommGraph(b.build());
    EXPECT_EQ(analysis::classifyTopology(g, 2), Topology::General);
  }
}

TEST(Topology, ToStringIsStable) {
  EXPECT_STREQ(analysis::toString(Topology::Ring), "ring");
  EXPECT_STREQ(analysis::toString(Topology::General), "general");
}

// ---------------------------------------------------------------------------
// Process symmetry orbits.
// ---------------------------------------------------------------------------

TEST(Orbits, TokenRingHasDistinguishedBottomProcess) {
  const protocol::Protocol p = casestudies::tokenRing(4, 3);
  const analysis::ProcessOrbits orbits =
      analysis::computeOrbits(p, analysis::buildCommGraph(p));
  ASSERT_EQ(orbits.orbitOf.size(), 4u);
  EXPECT_EQ(orbits.orbitCount, 2u);
  // P0 (the incrementing bottom process) is alone; P1..P3 share an orbit.
  EXPECT_EQ(orbits.orbitOf[0], 0u);
  EXPECT_EQ(orbits.orbitOf[1], 1u);
  EXPECT_EQ(orbits.orbitOf[2], 1u);
  EXPECT_EQ(orbits.orbitOf[3], 1u);
  EXPECT_NE(orbits.shapes[0], orbits.shapes[1]);
  EXPECT_EQ(orbits.shapes[1], orbits.shapes[2]);
  EXPECT_EQ(orbits.shapes[2], orbits.shapes[3]);
}

TEST(Orbits, ColoringProcessesAreAllEquivalent) {
  const protocol::Protocol p = casestudies::coloring(5);
  const analysis::ProcessOrbits orbits =
      analysis::computeOrbits(p, analysis::buildCommGraph(p));
  EXPECT_EQ(orbits.orbitCount, 1u);
  for (const std::size_t o : orbits.orbitOf) EXPECT_EQ(o, 0u);
}

TEST(Orbits, DifferentDomainsBreakTheOrbit) {
  // Two structurally identical processes whose variables differ in domain
  // must not share an orbit (a renaming cannot map domain 2 onto 3).
  ProtocolBuilder b("asym");
  const VarId x = b.variable("x", 2);
  const VarId y = b.variable("y", 3);
  const std::size_t p0 = b.process("P0", {x}, {x});
  const std::size_t p1 = b.process("P1", {y}, {y});
  b.action(p0, "a", ref(x) == lit(0), {{x, lit(1)}});
  b.action(p1, "a", ref(y) == lit(0), {{y, lit(1)}});
  b.invariant(ref(x) == lit(1) && ref(y) == lit(1));
  const protocol::Protocol p = b.build();
  const analysis::ProcessOrbits orbits =
      analysis::computeOrbits(p, analysis::buildCommGraph(p));
  EXPECT_EQ(orbits.orbitCount, 2u);
}

TEST(Orbits, RenamedVariablesKeepTheOrbitPartition) {
  // computeOrbits canonicalizes up to variable renaming: permuting the
  // declaration order must not change the partition (up to the induced
  // process identity, which renameVars leaves fixed).
  const protocol::Protocol p = casestudies::tokenRing(5, 4);
  std::vector<VarId> perm(p.vars.size());
  std::iota(perm.begin(), perm.end(), VarId{0});
  std::swap(perm[0], perm[3]);
  std::swap(perm[1], perm[4]);
  const protocol::Protocol q = protocol::renameVars(p, perm);

  const analysis::ProcessOrbits a =
      analysis::computeOrbits(p, analysis::buildCommGraph(p));
  const analysis::ProcessOrbits b =
      analysis::computeOrbits(q, analysis::buildCommGraph(q));
  EXPECT_EQ(a.orbitOf, b.orbitOf);
  EXPECT_EQ(a.shapes, b.shapes);
}

// ---------------------------------------------------------------------------
// Static variable order (reverse Cuthill–McKee) and the cost model.
// ---------------------------------------------------------------------------

TEST(StaticOrder, CaseStudyDeclarationsAreAlreadyOptimal) {
  // The hand-written case studies declare variables in ring order — the
  // locality optimum — so the tie-prefers-declared rule must return the
  // identity layout and keep existing encodings bit-for-bit identical.
  for (const protocol::Protocol& p :
       {casestudies::tokenRing(5, 4), casestudies::coloring(5)}) {
    const std::vector<VarId> order = analysis::staticVarOrder(p);
    std::vector<VarId> identity(p.vars.size());
    std::iota(identity.begin(), identity.end(), VarId{0});
    EXPECT_EQ(order, identity) << p.name;
  }
}

TEST(StaticOrder, RecoversLocalityFromAHostileDeclarationOrder) {
  // Deal the token ring's variables round-robin across the two halves of
  // the layout (0,2,4,...,1,3,5,...): ring neighbours land far apart, so
  // the declared order of the renamed protocol is strictly worse than the
  // ring optimum and RCM must recover a strictly cheaper layout.
  const protocol::Protocol p = casestudies::tokenRing(6, 3);
  std::vector<VarId> perm(p.vars.size());
  for (std::size_t v = 0; v < perm.size(); ++v) {
    perm[v] = v % 2 == 0 ? v / 2 : perm.size() / 2 + v / 2;
  }
  const protocol::Protocol q = protocol::renameVars(p, perm);

  std::vector<VarId> declared(q.vars.size());
  std::iota(declared.begin(), declared.end(), VarId{0});
  const std::vector<VarId> order = analysis::staticVarOrder(q);
  const std::size_t costDeclared = analysis::layoutCost(q, declared);
  const std::size_t costStatic = analysis::layoutCost(q, order);
  EXPECT_LE(costStatic, costDeclared);
  // The identity-order ring costs 1 per adjacent pair plus the wrap edge;
  // RCM must land within a constant of that on a scrambled ring.
  const std::size_t costOriginal =
      analysis::layoutCost(p, std::vector<VarId>{0, 1, 2, 3, 4, 5});
  EXPECT_LT(costStatic, costDeclared);
  EXPECT_LE(costStatic, 2 * costOriginal);
}

TEST(StaticOrder, LayoutCostCountsWeightedEdgeLengths) {
  // Two processes co-read {x,y} and {y,z}: cost of the declared layout
  // (x,y,z) is |0-1| + |1-2| = 2; the layout (y,x,z) costs 1 + 2 = 3.
  ProtocolBuilder b("w");
  const VarId x = b.variable("x", 2);
  const VarId y = b.variable("y", 2);
  const VarId z = b.variable("z", 2);
  b.process("P0", {x, y}, {x});
  b.process("P1", {y, z}, {z});
  b.invariant(ref(x) == lit(0));
  const protocol::Protocol p = b.build();
  EXPECT_EQ(analysis::layoutCost(p, std::vector<VarId>{x, y, z}), 2u);
  EXPECT_EQ(analysis::layoutCost(p, std::vector<VarId>{y, x, z}), 3u);
}

TEST(StaticOrder, AnalyzeProtocolBundlesEverything) {
  const protocol::Protocol p = casestudies::tokenRing(4, 3);
  const analysis::StaticInfo info = analysis::analyzeProtocol(p);
  EXPECT_EQ(info.topology, Topology::Ring);
  EXPECT_EQ(info.orbits.orbitCount, 2u);
  EXPECT_EQ(info.varOrder.size(), 4u);
  EXPECT_EQ(info.graph.procEdgeCount(), 4u);
}

// ---------------------------------------------------------------------------
// Value sets and abstract evaluation.
// ---------------------------------------------------------------------------

TEST(ValueSet, JoinInsertAndCap) {
  ValueSet a = ValueSet::of(1);
  a.insert(3);
  EXPECT_TRUE(a.contains(1));
  EXPECT_TRUE(a.contains(3));
  EXPECT_FALSE(a.contains(2));
  a.join(ValueSet::of(2));
  EXPECT_TRUE(a.contains(2));
  EXPECT_FALSE(a.top);

  ValueSet big;
  for (long v = 0; v < static_cast<long>(analysis::kValueSetCap) + 1; ++v) {
    big.insert(v);
  }
  EXPECT_TRUE(big.top);
  EXPECT_TRUE(big.contains(-12345));  // Top contains everything

  EXPECT_TRUE(ValueSet{}.empty());
  EXPECT_FALSE(ValueSet::topSet().empty());
}

TEST(AbsEval, FullEnvAndArithmetic) {
  ProtocolBuilder b("a");
  const VarId x = b.variable("x", 3);
  const VarId y = b.variable("y", 2);
  b.process("P", {x, y}, {x});
  b.invariant(ref(x) == lit(0));
  const protocol::Protocol p = b.build();

  const AbsEnv env = analysis::fullEnv(p);
  ASSERT_EQ(env.size(), 2u);
  EXPECT_EQ(env[x], (ValueSet{false, {0, 1, 2}}));
  EXPECT_EQ(env[y], (ValueSet{false, {0, 1}}));

  // x + y over {0,1,2} + {0,1} = {0,1,2,3}.
  const E sum = ref(x) + ref(y);
  EXPECT_EQ(analysis::absEvalInt(*sum.ptr(), env),
            (ValueSet{false, {0, 1, 2, 3}}));
  // (x + 1) mod 3 stays within 0..2 even though + overflows the domain.
  const E wrap = (ref(x) + lit(1)).mod(3);
  EXPECT_EQ(analysis::absEvalInt(*wrap.ptr(), env),
            (ValueSet{false, {0, 1, 2}}));
}

TEST(AbsEval, ThreeValuedBool) {
  ProtocolBuilder b("a");
  const VarId x = b.variable("x", 3);
  b.process("P", {x}, {x});
  b.invariant(ref(x) == lit(0));
  const protocol::Protocol p = b.build();
  const AbsEnv env = analysis::fullEnv(p);

  EXPECT_EQ(analysis::absEvalBool(*(ref(x) < lit(3)).ptr(), env),
            AbsBool::True);
  EXPECT_EQ(analysis::absEvalBool(*(ref(x) == lit(7)).ptr(), env),
            AbsBool::False);
  EXPECT_EQ(analysis::absEvalBool(*(ref(x) == lit(1)).ptr(), env),
            AbsBool::Top);
}

TEST(AbsEval, AssumeNarrowsAndDetectsEmptiness) {
  ProtocolBuilder b("a");
  const VarId x = b.variable("x", 4);
  const VarId y = b.variable("y", 4);
  b.process("P", {x, y}, {x});
  b.invariant(ref(x) == lit(0));
  const protocol::Protocol p = b.build();

  AbsEnv env = analysis::fullEnv(p);
  EXPECT_TRUE(analysis::assume(*(ref(x) == lit(2)).ptr(), true, env));
  EXPECT_EQ(env[x], ValueSet::of(2));
  EXPECT_EQ(env[y], (ValueSet{false, {0, 1, 2, 3}}));

  // Conjunction narrowing to empty is definite unsatisfiability.
  AbsEnv env2 = analysis::fullEnv(p);
  EXPECT_FALSE(
      analysis::assume(*(ref(x) == lit(0) && ref(x) == lit(1)).ptr(), true,
                       env2));

  // want=false narrows through the negation.
  AbsEnv env3 = analysis::fullEnv(p);
  EXPECT_TRUE(analysis::assume(*(ref(x) < lit(2)).ptr(), false, env3));
  EXPECT_EQ(env3[x], (ValueSet{false, {2, 3}}));

  // Relational constraints keep the over-approximation (both full).
  AbsEnv env4 = analysis::fullEnv(p);
  EXPECT_TRUE(
      analysis::assume(*(ref(x) == ref(y) && ref(x) != ref(y)).ptr(), true,
                       env4));
}

TEST(AbsLint, AllGuardsStaticallyUnsatisfiable) {
  // Degenerate protocol: every action's guard is impossible over the
  // declared domains — the abstract tier must flag each one.
  ProtocolBuilder b("frozen");
  const VarId x = b.variable("x", 2);
  const VarId y = b.variable("y", 2);
  const std::size_t p0 = b.process("P0", {x, y}, {x});
  const std::size_t p1 = b.process("P1", {x, y}, {y});
  b.action(p0, "a", ref(x) == lit(5), {{x, lit(0)}});
  b.action(p1, "b", ref(y) + ref(x) > lit(2), {{y, lit(0)}});
  b.invariant(ref(x) == lit(0));
  const protocol::Protocol p = b.build();

  analysis::Diagnostics diags;
  analysis::lintAbstract(p, diags);
  std::size_t unsat = 0;
  for (const analysis::Diagnostic& d : diags.items()) {
    if (d.ruleId == "abs-guard-unsat") {
      ++unsat;
      EXPECT_EQ(d.precision, "overapprox");
    }
  }
  EXPECT_EQ(unsat, 2u);
}

TEST(AbsLint, DeadAssignmentAndTautology) {
  ProtocolBuilder b("d");
  const VarId x = b.variable("x", 3);
  const std::size_t p0 = b.process("P0", {x}, {x});
  // Guard narrows x to {2}; assigning 2 can never change it.
  b.action(p0, "dead", ref(x) == lit(2), {{x, lit(2)}});
  // Always-true guard.
  b.action(p0, "always", ref(x) >= lit(0), {{x, lit(1)}});
  b.invariant(ref(x) == lit(0));
  const protocol::Protocol p = b.build();

  analysis::Diagnostics diags;
  analysis::lintAbstract(p, diags);
  bool dead = false;
  bool taut = false;
  for (const analysis::Diagnostic& d : diags.items()) {
    if (d.ruleId == "abs-dead-assignment") dead = true;
    if (d.ruleId == "abs-guard-tautology") taut = true;
  }
  EXPECT_TRUE(dead);
  EXPECT_TRUE(taut);
}

// ---------------------------------------------------------------------------
// Schedule orbit signatures (what the portfolio prunes with).
// ---------------------------------------------------------------------------

TEST(ScheduleOrbits, SignaturesAndRepresentatives) {
  const protocol::Protocol p = casestudies::tokenRing(4, 3);
  const analysis::ProcessOrbits orbits =
      analysis::computeOrbits(p, analysis::buildCommGraph(p));

  // Signature replaces each process with its orbit: schedules that walk
  // interchangeable processes in the same order collide.
  EXPECT_EQ(analysis::scheduleOrbitSignature(orbits, {0, 1, 2, 3}),
            (std::vector<std::size_t>{0, 1, 1, 1}));
  EXPECT_EQ(analysis::scheduleOrbitSignature(orbits, {0, 3, 1, 2}),
            (std::vector<std::size_t>{0, 1, 1, 1}));
  EXPECT_EQ(analysis::scheduleOrbitSignature(orbits, {1, 0, 2, 3}),
            (std::vector<std::size_t>{1, 0, 1, 1}));

  // All 24 schedules collapse to 4 signatures (position of P0), with the
  // earliest schedule of each group as representative.
  const std::vector<core::Schedule> schedules = core::allSchedules(4);
  const std::vector<std::size_t> reps =
      analysis::scheduleRepresentatives(orbits, schedules);
  ASSERT_EQ(reps.size(), 24u);
  std::size_t repCount = 0;
  for (std::size_t i = 0; i < reps.size(); ++i) {
    EXPECT_LE(reps[i], i);
    EXPECT_EQ(reps[reps[i]], reps[i]);  // representatives represent themselves
    EXPECT_EQ(analysis::scheduleOrbitSignature(orbits, schedules[i]),
              analysis::scheduleOrbitSignature(orbits, schedules[reps[i]]));
    if (reps[i] == i) ++repCount;
  }
  EXPECT_EQ(repCount, 4u);
}

}  // namespace
