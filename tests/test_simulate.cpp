// Tests for the random-scheduler simulator (fault injection + recovery).
#include <gtest/gtest.h>

#include "casestudies/token_ring.hpp"
#include "core/heuristic.hpp"
#include "explicitstate/simulate.hpp"
#include "symbolic/decode.hpp"

namespace {

using namespace stsyn;
using explicitstate::StateSpace;

TEST(Simulate, StabilizingProtocolConvergesFromEveryStartState) {
  const protocol::Protocol p = casestudies::dijkstraTokenRing(4, 4);
  const StateSpace space(p);
  const auto ts = explicitstate::buildTransitions(space);
  util::Rng rng(7);
  for (explicitstate::StateId s = 0; s < space.size(); ++s) {
    const auto run = explicitstate::simulate(space, ts, s, rng, 10000);
    EXPECT_TRUE(run.converged) << "start " << s;
  }
}

TEST(Simulate, StartInInvariantTakesZeroSteps) {
  const protocol::Protocol p = casestudies::dijkstraTokenRing(3, 3);
  const StateSpace space(p);
  const auto ts = explicitstate::buildTransitions(space);
  util::Rng rng(1);
  for (explicitstate::StateId s = 0; s < space.size(); ++s) {
    if (!space.inInvariant(s)) continue;
    const auto run = explicitstate::simulate(space, ts, s, rng, 100);
    EXPECT_TRUE(run.converged);
    EXPECT_EQ(run.steps, 0u);
  }
}

TEST(Simulate, DeadlockedStartNeverConverges) {
  const protocol::Protocol p = casestudies::tokenRing(4, 3);
  const StateSpace space(p);
  const auto ts = explicitstate::buildTransitions(space);
  const explicitstate::StateId dead =
      space.pack(std::vector<int>{0, 0, 1, 2});
  util::Rng rng(3);
  const auto run = explicitstate::simulate(space, ts, dead, rng, 1000);
  EXPECT_FALSE(run.converged);
}

TEST(Simulate, TraceRecordsTheWalk) {
  const protocol::Protocol p = casestudies::dijkstraTokenRing(3, 3);
  const StateSpace space(p);
  const auto ts = explicitstate::buildTransitions(space);
  util::Rng rng(5);
  // Find some illegitimate state.
  explicitstate::StateId start = 0;
  while (space.inInvariant(start)) ++start;
  const auto run = explicitstate::simulate(space, ts, start, rng, 1000,
                                           /*keepTrace=*/true);
  ASSERT_TRUE(run.converged);
  ASSERT_FALSE(run.trace.empty());
  EXPECT_EQ(run.trace.front(), start);
  // Each consecutive pair is an actual transition.
  for (std::size_t i = 0; i + 1 < run.trace.size(); ++i) {
    EXPECT_TRUE(ts.has(run.trace[i], run.trace[i + 1]));
  }
  EXPECT_TRUE(space.inInvariant(run.trace.back()));
}

TEST(Simulate, ConvergenceExperimentOnSynthesizedProtocol) {
  const protocol::Protocol p = casestudies::tokenRing(4, 3);
  const symbolic::Encoding enc(p);
  const symbolic::SymbolicProtocol sp(enc);
  core::StrongOptions opt;
  opt.schedule = core::rotatedSchedule(4, 1);
  const core::StrongResult r = core::addStrongConvergence(sp, opt);
  ASSERT_TRUE(r.success);

  const StateSpace space(p);
  std::vector<std::pair<explicitstate::StateId, explicitstate::StateId>>
      edges;
  for (const auto& [from, to] : symbolic::decodeRelation(enc, r.relation)) {
    edges.emplace_back(from, to);
  }
  const auto ts = explicitstate::fromEdges(space, edges);
  util::Rng rng(11);
  const auto stats =
      explicitstate::convergenceExperiment(space, ts, rng, 500, 10000);
  EXPECT_EQ(stats.trials, 500u);
  EXPECT_EQ(stats.converged, 500u);  // strong convergence: every run lands
  EXPECT_GE(stats.maxSteps, 1u);
  EXPECT_GT(stats.meanSteps, 0.0);
}

TEST(Rng, DeterministicAndUnbiasedEnough) {
  util::Rng a(42);
  util::Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
  // below() stays in range and hits every residue eventually.
  util::Rng r(1);
  std::vector<bool> seen(7, false);
  for (int i = 0; i < 1000; ++i) seen[r.below(7)] = true;
  for (bool s : seen) EXPECT_TRUE(s);
  // permutation() is a permutation.
  const auto perm = r.permutation(20);
  std::vector<bool> hit(20, false);
  for (std::size_t v : perm) hit[v] = true;
  for (bool h : hit) EXPECT_TRUE(h);
}

}  // namespace
