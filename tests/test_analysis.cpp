// Tests for the protocol linter (src/analysis): every rule has a positive
// fixture (a seeded defect that triggers exactly that rule at the expected
// source span) and the clean fixtures trigger nothing; plus diagnostics
// plumbing and the SARIF rendering shape.
#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/lint.hpp"
#include "lang/parser.hpp"

namespace {

using namespace stsyn;
using analysis::Diagnostic;
using analysis::Diagnostics;
using analysis::LintOptions;
using analysis::Severity;

/// Lints a source string and returns the diagnostics.
Diagnostics lint(std::string_view source, LintOptions options = {}) {
  Diagnostics diags;
  analysis::lintSource(source, diags, options);
  return diags;
}

/// The diagnostics whose ruleId matches.
std::vector<Diagnostic> ofRule(const Diagnostics& diags,
                               std::string_view rule) {
  std::vector<Diagnostic> out;
  for (const Diagnostic& d : diags.items()) {
    if (d.ruleId == rule) out.push_back(d);
  }
  return out;
}

/// Asserts exactly one diagnostic of `rule` exists, at line:column.
void expectOne(const Diagnostics& diags, std::string_view rule, int line,
               int column, Severity severity) {
  const std::vector<Diagnostic> hits = ofRule(diags, rule);
  ASSERT_EQ(hits.size(), 1u) << "rule " << rule << " in:\n"
                             << analysis::formatText(diags, "<test>");
  EXPECT_EQ(hits[0].loc.line, line) << rule;
  EXPECT_EQ(hits[0].loc.column, column) << rule;
  EXPECT_EQ(hits[0].severity, severity) << rule;
}

// ---------------------------------------------------------------------------
// Negative: clean protocols produce no diagnostics.
// ---------------------------------------------------------------------------

TEST(Lint, CleanProtocolHasNoDiagnostics) {
  const Diagnostics diags = lint(R"(protocol clean;
var x0 : 0..2;
var x1 : 0..2;
process P0 {
  reads x0, x1;
  writes x0;
  action bump : x0 == x1 -> x0 := (x1 + 1) mod 3;
}
process P1 {
  reads x0, x1;
  writes x1;
  action chase : x1 != x0 -> x1 := x0;
}
invariant : x0 == x1 || (x1 + 1) mod 3 == x0;
)");
  EXPECT_TRUE(diags.empty()) << analysis::formatText(diags, "<test>");
  EXPECT_FALSE(diags.failed(true));
}

// ---------------------------------------------------------------------------
// AST tier, validation-derived rules.
// ---------------------------------------------------------------------------

TEST(Lint, ReadRestrictionViolationAtActionSpan) {
  const Diagnostics diags = lint(R"(protocol p;
var x : 0..1;
var y : 0..1;
process P {
  reads x;
  writes x;
  action peek : y == 0 -> x := 1;
}
invariant : x == 0;
)");
  expectOne(diags, "read-restriction", 7, 3, Severity::Error);
  EXPECT_TRUE(diags.failed(false));
}

TEST(Lint, WriteRestrictionViolationAtActionSpan) {
  const Diagnostics diags = lint(R"(protocol p;
var x : 0..1;
var y : 0..1;
process P {
  reads x, y;
  writes x;
  action sneak : x == 0 -> y := 1;
}
invariant : x == 0;
)");
  expectOne(diags, "write-restriction", 7, 3, Severity::Error);
}

TEST(Lint, DuplicateAssignmentTarget) {
  const Diagnostics diags = lint(R"(protocol p;
var x : 0..1;
process P {
  reads x;
  writes x;
  action twice : x == 0 -> x := 1, x := 0;
}
invariant : x == 0;
)");
  expectOne(diags, "duplicate-assignment", 6, 3, Severity::Error);
}

TEST(Lint, NonBooleanGuard) {
  const Diagnostics diags = lint(R"(protocol p;
var x : 0..1;
process P {
  reads x;
  writes x;
  action g : x + 1 -> x := 0;
}
invariant : x == 0;
)");
  expectOne(diags, "guard-not-boolean", 6, 3, Severity::Error);
}

TEST(Lint, LenientParsingReportsAllIssuesAtOnce) {
  // One run surfaces both defects; the strict parser would stop at the
  // first.
  const Diagnostics diags = lint(R"(protocol p;
var x : 0..1;
var y : 0..1;
process P {
  reads x;
  writes x;
  action peek : y == 0 -> x := 1;
}
process Q {
  reads y;
  writes y;
  action sneak : y == 0 -> x := 1;
}
invariant : x == 0;
)");
  EXPECT_EQ(ofRule(diags, "read-restriction").size(), 1u);
  EXPECT_EQ(ofRule(diags, "write-restriction").size(), 1u);
}

// ---------------------------------------------------------------------------
// AST tier, lint-only rules.
// ---------------------------------------------------------------------------

TEST(Lint, InvariantOverUnreadableVariable) {
  const Diagnostics diags = lint(R"(protocol p;
var x : 0..1;
var g : 0..1;
process P {
  reads x;
  writes x;
  action a : x == 0 -> x := 1;
}
invariant : x == 0 && g == 0;
)");
  expectOne(diags, "invariant-unreadable", 9, 1, Severity::Warning);
}

TEST(Lint, CompareOutOfDomain) {
  const Diagnostics diags = lint(R"(protocol p;
var x : 0..2;
process P {
  reads x;
  writes x;
  action a : x == 7 -> x := 0;
}
invariant : x == 0;
)");
  expectOne(diags, "compare-out-of-domain", 6, 3, Severity::Warning);
  // The unsatisfiable guard is also caught by the abstract tier, which
  // suppresses the symbolic-tier duplicate at the same position.
  EXPECT_EQ(ofRule(diags, "abs-guard-unsat").size(), 1u);
  EXPECT_TRUE(ofRule(diags, "guard-unsat").empty());
}

TEST(Lint, AssignOutOfDomainIsAnError) {
  const Diagnostics diags = lint(R"(protocol p;
var x : 0..2;
process P {
  reads x;
  writes x;
  action inc : x < 2 -> x := x + 1;
}
invariant : x == 0;
)");
  // x + 1 ranges over 1..3; the symbolic compiler would reject value 3.
  expectOne(diags, "assign-out-of-domain", 6, 3, Severity::Error);
}

TEST(Lint, DuplicateActionLabel) {
  const Diagnostics diags = lint(R"(protocol p;
var x : 0..1;
process P {
  reads x;
  writes x;
  action go : x == 0 -> x := 1;
  action go : x == 1 -> x := 0;
}
invariant : x == 0;
)");
  expectOne(diags, "duplicate-label", 7, 3, Severity::Warning);
}

TEST(Lint, DuplicateProcessName) {
  const Diagnostics diags = lint(R"(protocol p;
var x : 0..1;
var y : 0..1;
process P {
  reads x;
  writes x;
}
process P {
  reads y;
  writes y;
}
invariant : x == 0 && y == 0;
)");
  expectOne(diags, "duplicate-process", 8, 9, Severity::Warning);
}

TEST(Lint, DeadVariable) {
  const Diagnostics diags = lint(R"(protocol p;
var x : 0..1;
var unused : 0..3;
process P {
  reads x;
  writes x;
  action a : x == 0 -> x := 1;
}
invariant : x == 0;
)");
  expectOne(diags, "dead-variable", 3, 5, Severity::Warning);
}

// ---------------------------------------------------------------------------
// Abstract-interpretation tier, and its interplay with the symbolic tier:
// defects the value-set domains can prove get abs-* ids (and suppress the
// symbolic duplicate); relational defects still fall to the BDD tier.
// ---------------------------------------------------------------------------

TEST(Lint, UnsatisfiableGuard) {
  // x == 0 && x == 1 is unsatisfiable per-variable, so the abstract tier
  // proves it without BDDs and the symbolic duplicate is suppressed.
  const Diagnostics diags = lint(R"(protocol p;
var x : 0..2;
process P {
  reads x;
  writes x;
  action never : x == 0 && x == 1 -> x := 2;
  action fine : x == 0 -> x := 1;
}
invariant : x == 0 || x == 1;
)");
  expectOne(diags, "abs-guard-unsat", 6, 3, Severity::Warning);
  EXPECT_TRUE(ofRule(diags, "guard-unsat").empty());
}

TEST(Lint, RelationalUnsatGuardFallsToSymbolicTier) {
  // x == y && x != y is satisfiable under the non-relational value-set
  // domain (each variable alone keeps its full domain), so only the exact
  // BDD tier can prove it empty.
  const Diagnostics diags = lint(R"(protocol p;
var x : 0..1;
var y : 0..1;
process P {
  reads x, y;
  writes x;
  action never : x == y && x != y -> x := y;
}
invariant : x == 0;
)");
  expectOne(diags, "guard-unsat", 7, 3, Severity::Warning);
  EXPECT_TRUE(ofRule(diags, "abs-guard-unsat").empty());
}

TEST(Lint, IdentityAction) {
  const Diagnostics diags = lint(R"(protocol p;
var x : 0..1;
process P {
  reads x;
  writes x;
  action idle : x == 1 -> x := 1;
}
invariant : x == 0;
)");
  expectOne(diags, "action-identity", 6, 3, Severity::Warning);
}

TEST(Lint, OverlappingActionsWithDifferentEffectsAreANote) {
  const Diagnostics diags = lint(R"(protocol p;
var x : 0..2;
process P {
  reads x;
  writes x;
  action up : x == 0 -> x := 1;
  action down : x == 0 -> x := 2;
}
invariant : x == 1 || x == 2;
)");
  expectOne(diags, "action-overlap", 7, 3, Severity::Note);
  // Nondeterminism is legal in the guarded-command model: a note never
  // fails the run, even under --werror.
  EXPECT_FALSE(diags.failed(true));
}

TEST(Lint, DisjointOrIdenticalActionsDoNotOverlapReport) {
  const Diagnostics diags = lint(R"(protocol p;
var x : 0..2;
process P {
  reads x;
  writes x;
  action a : x == 0 -> x := 1;
  action b : x == 1 -> x := 2;
}
invariant : x == 2;
)");
  EXPECT_TRUE(ofRule(diags, "action-overlap").empty());
}

TEST(Lint, EmptyInvariant) {
  // Per-variable provable: the abstract tier reports it (as an error, so
  // the symbolic tier is skipped entirely).
  const Diagnostics diags = lint(R"(protocol p;
var x : 0..1;
process P {
  reads x;
  writes x;
}
invariant : x == 0 && x == 1;
)");
  expectOne(diags, "abs-invariant-empty", 7, 1, Severity::Error);
  EXPECT_TRUE(ofRule(diags, "invariant-empty").empty());
}

TEST(Lint, RelationalEmptyInvariantFallsToSymbolicTier) {
  const Diagnostics diags = lint(R"(protocol p;
var x : 0..1;
var y : 0..1;
process P {
  reads x, y;
  writes x;
}
invariant : x == y && x != y;
)");
  expectOne(diags, "invariant-empty", 8, 1, Severity::Error);
  EXPECT_TRUE(ofRule(diags, "abs-invariant-empty").empty());
}

TEST(Lint, TrivialInvariant) {
  const Diagnostics diags = lint(R"(protocol p;
var x : 0..1;
process P {
  reads x;
  writes x;
}
invariant : true;
)");
  expectOne(diags, "abs-invariant-trivial", 7, 1, Severity::Warning);
  EXPECT_TRUE(ofRule(diags, "invariant-trivial").empty());
}

TEST(Lint, DisjunctiveTrivialInvariantFallsToSymbolicTier) {
  // x == 0 || x != 0 is a tautology, but three-valued evaluation of the
  // disjunction over value sets yields Top — only the BDD tier proves it.
  const Diagnostics diags = lint(R"(protocol p;
var x : 0..1;
process P {
  reads x;
  writes x;
}
invariant : x == 0 || x != 0;
)");
  expectOne(diags, "invariant-trivial", 7, 1, Severity::Warning);
  EXPECT_TRUE(ofRule(diags, "abs-invariant-trivial").empty());
}

TEST(Lint, SymbolicTierCanBeDisabled) {
  Diagnostics diags;
  LintOptions options;
  options.symbolic = false;
  analysis::lintSource(R"(protocol p;
var x : 0..1;
process P {
  reads x;
  writes x;
  action idle : x == 1 -> x := 1;
}
invariant : x == 0;
)",
                       diags, options);
  EXPECT_TRUE(ofRule(diags, "action-identity").empty());
}

TEST(Lint, SymbolicTierSkippedWhenAstTierErrors) {
  // The broken guard makes the protocol uncompilable; the symbolic tier
  // must not crash, it must simply not run.
  const Diagnostics diags = lint(R"(protocol p;
var x : 0..1;
process P {
  reads x;
  writes x;
  action g : x + 1 -> x := 0;
  action idle : x == 1 -> x := 1;
}
invariant : x == 0;
)");
  EXPECT_EQ(ofRule(diags, "guard-not-boolean").size(), 1u);
  EXPECT_TRUE(ofRule(diags, "action-identity").empty());
}

// ---------------------------------------------------------------------------
// Parse errors flow into diagnostics.
// ---------------------------------------------------------------------------

TEST(Lint, ParseErrorBecomesDiagnostic) {
  Diagnostics diags;
  const bool parsed = analysis::lintSource("protocol p;\nvar x 0..1;\n", diags);
  EXPECT_FALSE(parsed);
  expectOne(diags, "parse-error", 2, 7, Severity::Error);
  EXPECT_TRUE(diags.failed(false));
}

// ---------------------------------------------------------------------------
// Diagnostics plumbing.
// ---------------------------------------------------------------------------

TEST(Diagnostics, SeverityCountsAndFailure) {
  Diagnostics d;
  d.add("r1", Severity::Note, "n");
  d.add("r2", Severity::Warning, "w");
  EXPECT_EQ(d.count(Severity::Note), 1u);
  EXPECT_EQ(d.count(Severity::Warning), 1u);
  EXPECT_EQ(d.count(Severity::Error), 0u);
  EXPECT_FALSE(d.failed(false));
  EXPECT_TRUE(d.failed(true));
  d.add("r3", Severity::Error, "e");
  EXPECT_TRUE(d.failed(false));
}

TEST(Diagnostics, SortByLocationKeepsUnknownLast) {
  Diagnostics d;
  d.add("a", Severity::Warning, "unpositioned");
  d.add("b", Severity::Warning, "late", {9, 1});
  d.add("c", Severity::Warning, "early", {2, 5});
  d.add("d", Severity::Warning, "same line later column", {2, 9});
  d.sortByLocation();
  ASSERT_EQ(d.items().size(), 4u);
  EXPECT_EQ(d.items()[0].ruleId, "c");
  EXPECT_EQ(d.items()[1].ruleId, "d");
  EXPECT_EQ(d.items()[2].ruleId, "b");
  EXPECT_EQ(d.items()[3].ruleId, "a");
}

TEST(Diagnostics, TextFormatIsCompilerStyle) {
  Diagnostics d;
  d.add("dead-variable", Severity::Warning, "variable z is dead", {3, 5});
  const std::string text = analysis::formatText(d, "proto.stsyn");
  EXPECT_NE(text.find("proto.stsyn:3:5: warning: variable z is dead "
                      "[dead-variable]"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("1 warning(s)"), std::string::npos);
}

// ---------------------------------------------------------------------------
// SARIF shape.
// ---------------------------------------------------------------------------

TEST(Sarif, OutputHasExpectedShape) {
  Diagnostics d;
  d.add("guard-unsat", Severity::Warning, "guard is \"unsatisfiable\"",
        {6, 3});
  d.add("invariant-empty", Severity::Error, "no legitimate states", {9, 1});
  {
    Diagnostic abs;
    abs.ruleId = "abs-guard-unsat";
    abs.severity = Severity::Warning;
    abs.message = "never satisfiable over the domains";
    abs.loc = {12, 3};
    abs.precision = "overapprox";
    d.add(std::move(abs));
  }
  const std::string sarif = analysis::formatSarif(d, "proto.stsyn");

  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"name\": \"stsyn-lint\""), std::string::npos);
  // Rule metadata lists each distinct rule once, with descriptions and a
  // docs anchor.
  EXPECT_NE(sarif.find("\"id\": \"guard-unsat\""), std::string::npos);
  EXPECT_NE(sarif.find("\"id\": \"invariant-empty\""), std::string::npos);
  EXPECT_NE(sarif.find("\"shortDescription\""), std::string::npos);
  EXPECT_NE(sarif.find("\"fullDescription\""), std::string::npos);
  EXPECT_NE(sarif.find("\"helpUri\": \"https://github.com/stsyn/stsyn/"
                       "blob/main/docs/lint_rules.md#guard-unsat\""),
            std::string::npos);
  // Abstract-tier rules are tagged over-approximate at the rule level and
  // on each result.
  EXPECT_NE(sarif.find("\"properties\": {\"precision\": \"overapprox\"}"),
            std::string::npos);
  // Column semantics are pinned at the run level.
  EXPECT_NE(sarif.find("\"columnKind\": \"unicodeCodePoints\""),
            std::string::npos);
  // Results carry level, message, and a physical location with a region.
  EXPECT_NE(sarif.find("\"ruleId\": \"guard-unsat\""), std::string::npos);
  EXPECT_NE(sarif.find("\"level\": \"warning\""), std::string::npos);
  EXPECT_NE(sarif.find("\"level\": \"error\""), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\": 6, \"startColumn\": 3"),
            std::string::npos);
  // Quotes inside messages are escaped.
  EXPECT_NE(sarif.find("guard is \\\"unsatisfiable\\\""), std::string::npos);
  EXPECT_NE(sarif.find("\"uri\": \"proto.stsyn\""), std::string::npos);
  // Balanced braces/brackets — cheap structural sanity check.
  EXPECT_EQ(std::count(sarif.begin(), sarif.end(), '{'),
            std::count(sarif.begin(), sarif.end(), '}'));
  EXPECT_EQ(std::count(sarif.begin(), sarif.end(), '['),
            std::count(sarif.begin(), sarif.end(), ']'));
}

TEST(Sarif, EmptyRunIsStillWellFormed) {
  const Diagnostics d;
  const std::string sarif = analysis::formatSarif(d, "clean.stsyn");
  EXPECT_NE(sarif.find("\"results\": []"), std::string::npos);
  EXPECT_EQ(std::count(sarif.begin(), sarif.end(), '{'),
            std::count(sarif.begin(), sarif.end(), '}'));
}

// ---------------------------------------------------------------------------
// Builder positions flow into strict validation errors (satellite: the
// builder's validate() now reports source positions, not just names).
// ---------------------------------------------------------------------------

TEST(Positions, StrictParseErrorsCarrySourcePositions) {
  try {
    (void)lang::parseProtocol(R"(protocol p;
var x : 0..1;
var y : 0..1;
process P {
  reads x;
  writes x;
  action peek : y == 0 -> x := 1;
}
invariant : x == 0;
)");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("(line 7:3)"), std::string::npos)
        << e.what();
  }
}

TEST(Positions, ParserRecordsEntityLocations) {
  const protocol::Protocol p = lang::parseProtocol(R"(protocol p;
var x : 0..1;
process P {
  reads x;
  writes x;
  action a : x == 0 -> x := 1;
}
invariant : x == 0;
)");
  EXPECT_EQ(p.vars[0].loc.line, 2);
  EXPECT_EQ(p.vars[0].loc.column, 5);
  EXPECT_EQ(p.processes[0].loc.line, 3);
  EXPECT_EQ(p.processes[0].loc.column, 9);
  EXPECT_EQ(p.processes[0].actions[0].loc.line, 6);
  EXPECT_EQ(p.processes[0].actions[0].loc.column, 3);
  EXPECT_EQ(p.invariantLoc.line, 8);
  EXPECT_EQ(p.invariantLoc.column, 1);
}

// ---------------------------------------------------------------------------
// The shipped example protocols stay lint-clean (no errors, no warnings;
// notes are allowed — matching5_gouda_acharya's nondeterministic take
// actions are part of the published protocol).
// ---------------------------------------------------------------------------

class ExampleProtocols : public ::testing::TestWithParam<const char*> {};

TEST_P(ExampleProtocols, LintsClean) {
  const std::string path =
      std::string(STSYN_PROTOCOL_DIR) + "/" + GetParam();
  std::vector<protocol::ValidationIssue> issues;
  Diagnostics diags;
  const protocol::Protocol p = lang::parseProtocolFileLenient(path, issues);
  analysis::lintProtocol(p, issues, diags);
  EXPECT_FALSE(diags.failed(/*werror=*/true))
      << analysis::formatText(diags, path);
}

INSTANTIATE_TEST_SUITE_P(All, ExampleProtocols,
                         ::testing::Values("coloring5.stsyn",
                                           "matching5.stsyn",
                                           "matching5_gouda_acharya.stsyn",
                                           "token_ring4.stsyn",
                                           "two_ring.stsyn"));

}  // namespace
