// Tests for the observability subsystem: the JSON writer/parser
// round-trip, the span tracer and its Chrome trace_event rendering, the
// SynthesisStats JSON export, and the (frozen) human summary() format.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "casestudies/token_ring.hpp"
#include "core/heuristic.hpp"
#include "core/stats.hpp"
#include "obs/json.hpp"
#include "obs/trace.hpp"
#include "symbolic/encoding.hpp"

namespace {

using namespace stsyn;
using obs::JsonValue;
using obs::JsonWriter;
using obs::parseJson;
using obs::Span;
using obs::TraceEvent;
using obs::Tracer;

/// Restores a quiet tracer after each test that touches the global one.
class TracerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::global().disable();
    Tracer::global().clear();
  }
  void TearDown() override {
    Tracer::global().disable();
    Tracer::global().clear();
  }
};

// ---------------------------------------------------------------- JSON --

TEST(Json, QuoteEscapesSpecials) {
  EXPECT_EQ(obs::jsonQuote("plain"), "\"plain\"");
  EXPECT_EQ(obs::jsonQuote("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(obs::jsonQuote("a\\b"), "\"a\\\\b\"");
  EXPECT_EQ(obs::jsonQuote("a\nb\tc"), "\"a\\nb\\tc\"");
  EXPECT_EQ(obs::jsonQuote(std::string_view("a\0b", 3)), "\"a\\u0000b\"");
}

TEST(Json, NumberNeverEmitsNonFinite) {
  EXPECT_EQ(obs::jsonNumber(0.0), "0");
  EXPECT_EQ(obs::jsonNumber(42.0), "42");
  // NaN/Inf render as null — NOT as "0", which would be indistinguishable
  // from a genuine zero in a stats document.
  EXPECT_EQ(obs::jsonNumber(std::nan("")), "null");
  EXPECT_EQ(obs::jsonNumber(HUGE_VAL), "null");
  EXPECT_EQ(obs::jsonNumber(-HUGE_VAL), "null");
}

TEST(Json, NonFiniteValuesRoundTripAsNull) {
  std::ostringstream os;
  JsonWriter w(os);
  w.beginObject();
  w.field("nan", std::nan(""));
  w.field("pos_inf", HUGE_VAL);
  w.field("neg_inf", -HUGE_VAL);
  w.field("zero", 0.0);
  w.key("mixed");
  w.beginArray();
  w.value(1.5);
  w.value(std::numeric_limits<double>::infinity());
  w.endArray();
  w.endObject();

  std::string err;
  const auto doc = parseJson(os.str(), &err);
  ASSERT_TRUE(doc.has_value()) << err << "\n" << os.str();
  for (const char* key : {"nan", "pos_inf", "neg_inf"}) {
    const JsonValue* v = doc->find(key);
    ASSERT_NE(v, nullptr) << key;
    EXPECT_EQ(v->kind, JsonValue::Kind::Null) << key;
    // Consumers that read .number from a tolerated null see 0.0 — the
    // documented JsonValue default — rather than garbage.
    EXPECT_DOUBLE_EQ(v->number, 0.0) << key;
  }
  EXPECT_EQ(doc->find("zero")->kind, JsonValue::Kind::Number);
  const JsonValue* mixed = doc->find("mixed");
  ASSERT_TRUE(mixed->isArray());
  ASSERT_EQ(mixed->items.size(), 2u);
  EXPECT_EQ(mixed->items[0].kind, JsonValue::Kind::Number);
  EXPECT_EQ(mixed->items[1].kind, JsonValue::Kind::Null);
}

TEST(Json, WriterProducesParsableDocument) {
  std::ostringstream os;
  JsonWriter w(os);
  w.beginObject();
  w.field("name", "token ring");
  w.field("pi", 3.5);
  w.field("n", std::int64_t{-7});
  w.field("u", std::uint64_t{18446744073709551615ull});
  w.field("flag", true);
  w.key("list");
  w.beginArray();
  w.value(1);
  w.value("two");
  w.beginObject();
  w.field("nested", false);
  w.endObject();
  w.endArray();
  w.endObject();

  std::string err;
  const auto doc = parseJson(os.str(), &err);
  ASSERT_TRUE(doc.has_value()) << err << "\n" << os.str();
  ASSERT_TRUE(doc->isObject());
  EXPECT_EQ(doc->find("name")->str, "token ring");
  EXPECT_DOUBLE_EQ(doc->find("pi")->number, 3.5);
  EXPECT_DOUBLE_EQ(doc->find("n")->number, -7.0);
  EXPECT_EQ(doc->find("flag")->kind, JsonValue::Kind::Bool);
  EXPECT_TRUE(doc->find("flag")->boolean);
  const JsonValue* list = doc->find("list");
  ASSERT_NE(list, nullptr);
  ASSERT_TRUE(list->isArray());
  ASSERT_EQ(list->items.size(), 3u);
  EXPECT_DOUBLE_EQ(list->items[0].number, 1.0);
  EXPECT_EQ(list->items[1].str, "two");
  EXPECT_EQ(list->items[2].find("nested")->kind, JsonValue::Kind::Bool);
  EXPECT_EQ(doc->find("absent"), nullptr);
}

TEST(Json, RoundTripPreservesEscapedStrings) {
  const std::string nasty = "quote\" slash\\ newline\n tab\t unicode \xC3\xA9";
  std::ostringstream os;
  JsonWriter w(os);
  w.beginObject();
  w.field("s", nasty);
  w.endObject();
  const auto doc = parseJson(os.str());
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->find("s")->str, nasty);
}

TEST(Json, ParserAcceptsUnicodeEscapes) {
  const auto doc = parseJson("{\"s\": \"\\u0041\\u00e9\"}");
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->find("s")->str, "A\xC3\xA9");
}

TEST(Json, ParserRejectsMalformedInput) {
  std::string err;
  EXPECT_FALSE(parseJson("", &err).has_value());
  EXPECT_FALSE(parseJson("{", &err).has_value());
  EXPECT_FALSE(parseJson("{\"a\": 1,}", &err).has_value());
  EXPECT_FALSE(parseJson("[1, 2] trailing", &err).has_value());
  EXPECT_FALSE(parseJson("{\"a\" 1}", &err).has_value());
  EXPECT_FALSE(parseJson("\"unterminated", &err).has_value());
  EXPECT_FALSE(parseJson("\"bad \\q escape\"", &err).has_value());
  EXPECT_FALSE(parseJson("nul", &err).has_value());
  EXPECT_FALSE(parseJson("01", &err).has_value());
  EXPECT_FALSE(parseJson(std::string_view("\"ctrl \x01\"", 8), &err)
                   .has_value());
  EXPECT_FALSE(err.empty());
}

TEST(Json, ParserRejectsRunawayNesting) {
  std::string deep(300, '[');
  deep += std::string(300, ']');
  EXPECT_FALSE(parseJson(deep).has_value());
  std::string ok(50, '[');
  ok += std::string(50, ']');
  EXPECT_TRUE(parseJson(ok).has_value());
}

// -------------------------------------------------------------- Tracer --

TEST_F(TracerTest, DisabledTracerRecordsNothing) {
  {
    Span s("should_not_appear", "test");
    s.arg("x", 1);
    EXPECT_FALSE(s.active());
  }
  Tracer::global().counter("c", 1.0);
  Tracer::global().instant("i");
  EXPECT_EQ(Tracer::global().eventCount(), 0u);
}

TEST_F(TracerTest, NestedSpansProduceContainedIntervals) {
  Tracer::global().enable();
  {
    Span outer("outer", "test");
    outer.arg("layer", 0);
    {
      Span inner("inner", "test");
      inner.arg("layer", 1);
      EXPECT_TRUE(inner.active());
    }
  }
  const auto events = Tracer::global().snapshot();
  ASSERT_EQ(events.size(), 2u);
  // Spans are recorded at destruction: inner first, outer second.
  const auto& inner = events[0];
  const auto& outer = events[1];
  EXPECT_EQ(inner.name, "inner");
  EXPECT_EQ(outer.name, "outer");
  EXPECT_EQ(inner.tid, outer.tid);
  EXPECT_GE(inner.durNs, 0);
  EXPECT_GE(outer.durNs, inner.durNs);
  EXPECT_LE(outer.startNs, inner.startNs);
  EXPECT_GE(outer.startNs + outer.durNs, inner.startNs + inner.durNs);
  ASSERT_EQ(outer.args.size(), 1u);
  EXPECT_EQ(outer.args[0].key, "layer");
  EXPECT_EQ(outer.args[0].json, "0");
}

TEST_F(TracerTest, ChromeTraceJsonIsValidAndShaped) {
  Tracer::global().enable();
  Tracer::global().setThreadName("test-main");
  {
    Span s("phase", "test");
    s.arg("count", std::size_t{42});
    s.arg("label", std::string("a \"quoted\" label"));
  }
  Tracer::global().counter("live_nodes", 123.0);
  Tracer::global().instant("milestone");

  std::string err;
  const auto doc = parseJson(Tracer::global().chromeTraceJson(), &err);
  ASSERT_TRUE(doc.has_value()) << err;
  EXPECT_EQ(doc->find("displayTimeUnit")->str, "ms");
  const JsonValue* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->isArray());
  ASSERT_EQ(events->items.size(), 4u);

  bool sawComplete = false, sawCounter = false, sawInstant = false,
       sawMeta = false;
  for (const JsonValue& e : events->items) {
    ASSERT_TRUE(e.isObject());
    ASSERT_NE(e.find("ph"), nullptr);
    ASSERT_NE(e.find("name"), nullptr);
    ASSERT_NE(e.find("pid"), nullptr);
    ASSERT_NE(e.find("tid"), nullptr);
    const std::string& ph = e.find("ph")->str;
    if (ph == "X") {
      sawComplete = true;
      EXPECT_EQ(e.find("name")->str, "phase");
      EXPECT_EQ(e.find("cat")->str, "test");
      ASSERT_NE(e.find("dur"), nullptr);
      EXPECT_GE(e.find("dur")->number, 0.0);
      const JsonValue* args = e.find("args");
      ASSERT_NE(args, nullptr);
      EXPECT_DOUBLE_EQ(args->find("count")->number, 42.0);
      EXPECT_EQ(args->find("label")->str, "a \"quoted\" label");
    } else if (ph == "C") {
      sawCounter = true;
      EXPECT_DOUBLE_EQ(e.find("args")->find("value")->number, 123.0);
    } else if (ph == "i") {
      sawInstant = true;
      EXPECT_EQ(e.find("name")->str, "milestone");
    } else if (ph == "M") {
      sawMeta = true;
      EXPECT_EQ(e.find("name")->str, "thread_name");
      EXPECT_EQ(e.find("args")->find("name")->str, "test-main");
    }
  }
  EXPECT_TRUE(sawComplete);
  EXPECT_TRUE(sawCounter);
  EXPECT_TRUE(sawInstant);
  EXPECT_TRUE(sawMeta);
}

TEST_F(TracerTest, ClearEmptiesTheBuffer) {
  Tracer::global().enable();
  { Span s("x", "test"); }
  EXPECT_EQ(Tracer::global().eventCount(), 1u);
  Tracer::global().clear();
  EXPECT_EQ(Tracer::global().eventCount(), 0u);
}

// -------------------------------------------------- SynthesisStats JSON --

core::SynthesisStats sampleStats() {
  core::SynthesisStats s;
  s.rankingSeconds = 0.5;
  s.sccSeconds = 0.25;
  s.totalSeconds = 1.0;
  s.rankCount = 7;
  s.sccDetectionCalls = 3;
  s.sccFastPathHits = 1;
  s.sccComponentsFound = 2;
  s.sccNodesTotal = 10;
  s.sccSymbolicSteps = 20;
  s.programNodes = 1234;
  s.peakLiveNodes = 999;
  s.gcRuns = 4;
  s.cacheLookups = 100;
  s.cacheHits = 80;
  s.passCompleted = 2;
  s.imagePolicy = "perprocess";
  s.imageOps = 11;
  s.preimageOps = 13;
  s.imagePartProducts = 44;
  s.frontierSteps = 6;
  return s;
}

TEST(StatsJson, WriteJsonRoundTripsEveryField) {
  const core::SynthesisStats s = sampleStats();
  std::ostringstream os;
  JsonWriter w(os);
  s.writeJson(w);
  std::string err;
  const auto doc = parseJson(os.str(), &err);
  ASSERT_TRUE(doc.has_value()) << err << "\n" << os.str();
  EXPECT_DOUBLE_EQ(doc->find("ranking_seconds")->number, 0.5);
  EXPECT_DOUBLE_EQ(doc->find("scc_seconds")->number, 0.25);
  EXPECT_DOUBLE_EQ(doc->find("total_seconds")->number, 1.0);
  EXPECT_DOUBLE_EQ(doc->find("rank_count")->number, 7.0);
  EXPECT_DOUBLE_EQ(doc->find("scc_detection_calls")->number, 3.0);
  EXPECT_DOUBLE_EQ(doc->find("scc_fast_path_hits")->number, 1.0);
  EXPECT_DOUBLE_EQ(doc->find("scc_components_found")->number, 2.0);
  EXPECT_DOUBLE_EQ(doc->find("scc_nodes_total")->number, 10.0);
  EXPECT_DOUBLE_EQ(doc->find("scc_symbolic_steps")->number, 20.0);
  EXPECT_DOUBLE_EQ(doc->find("avg_scc_nodes")->number, 5.0);
  EXPECT_DOUBLE_EQ(doc->find("program_nodes")->number, 1234.0);
  EXPECT_DOUBLE_EQ(doc->find("peak_live_nodes")->number, 999.0);
  EXPECT_DOUBLE_EQ(doc->find("reorder_runs")->number, 0.0);
  EXPECT_DOUBLE_EQ(doc->find("gc_runs")->number, 4.0);
  EXPECT_DOUBLE_EQ(doc->find("cache_lookups")->number, 100.0);
  EXPECT_DOUBLE_EQ(doc->find("cache_hits")->number, 80.0);
  EXPECT_DOUBLE_EQ(doc->find("cache_hit_rate")->number, 0.8);
  EXPECT_DOUBLE_EQ(doc->find("pass_completed")->number, 2.0);
  EXPECT_EQ(doc->find("image_policy")->str, "perprocess");
  EXPECT_DOUBLE_EQ(doc->find("image_ops")->number, 11.0);
  EXPECT_DOUBLE_EQ(doc->find("preimage_ops")->number, 13.0);
  EXPECT_DOUBLE_EQ(doc->find("image_part_products")->number, 44.0);
  EXPECT_DOUBLE_EQ(doc->find("frontier_steps")->number, 6.0);
  // v2: cache_hit / deadline_exceeded became mandatory top-level keys.
  EXPECT_EQ(core::kStatsJsonSchemaVersion, 2);
}

// The human-readable summary is consumed by eyeballs and by the existing
// CLI output; the JSON document is where new fields go. These pin the
// exact format so the observability work never drifts it.
TEST(StatsSummary, FormatIsUnchanged) {
  EXPECT_EQ(sampleStats().summary(),
            "ranking 0.500s, scc 0.250s (3 calls, 2 components), "
            "total 1.000s, M=7, program 1234 nodes, avg scc 5.0 nodes, "
            "peak 999 nodes, pass 2");
}

TEST(StatsSummary, ReorderSuffixIsUnchanged) {
  core::SynthesisStats s = sampleStats();
  s.reorderRuns = 2;
  s.reorderSeconds = 0.125;
  s.reorderNodesSaved = 50;
  EXPECT_EQ(s.summary(),
            "ranking 0.500s, scc 0.250s (3 calls, 2 components), "
            "total 1.000s, M=7, program 1234 nodes, avg scc 5.0 nodes, "
            "peak 999 nodes, pass 2, reorder 2x 0.125s (-50 nodes)");
}

// --------------------------------------------------------- end to end --

TEST_F(TracerTest, SynthesisEmitsPhaseSpans) {
  Tracer::global().enable();
  const protocol::Protocol p = casestudies::tokenRing(4, 3);
  symbolic::Encoding enc(p);
  symbolic::SymbolicProtocol sp(enc);
  const core::StrongResult r = core::addStrongConvergence(sp);
  ASSERT_TRUE(r.success);
  EXPECT_GT(r.stats.cacheLookups, 0u);
  EXPECT_GT(r.stats.cacheHits, 0u);
  EXPECT_LE(r.stats.cacheHits, r.stats.cacheLookups);

  const auto events = Tracer::global().snapshot();
  auto count = [&](const char* name) {
    std::size_t n = 0;
    for (const auto& e : events) n += e.name == name ? 1 : 0;
    return n;
  };
  EXPECT_EQ(count("add_strong_convergence"), 1u);
  EXPECT_EQ(count("ranking"), 1u);
  EXPECT_GE(count("scc_detect"), 1u);
  EXPECT_GE(count("pass1"), 1u);
  // The whole-synthesis span must contain the ranking span.
  const TraceEvent *whole = nullptr, *ranking = nullptr;
  for (const auto& e : events) {
    if (e.name == "add_strong_convergence") whole = &e;
    if (e.name == "ranking") ranking = &e;
  }
  ASSERT_NE(whole, nullptr);
  ASSERT_NE(ranking, nullptr);
  EXPECT_LE(whole->startNs, ranking->startNs);
  EXPECT_GE(whole->startNs + whole->durNs, ranking->startNs + ranking->durNs);
  // And the result renders as a loadable Chrome trace.
  const auto doc = parseJson(Tracer::global().chromeTraceJson());
  ASSERT_TRUE(doc.has_value());
  EXPECT_GE(doc->find("traceEvents")->items.size(), events.size());
}

}  // namespace
