// Randomized differential testing: generate random small protocols
// (random topology, random invariant; empty action sets so closure holds
// trivially), run BOTH synthesis engines, and assert they agree exactly —
// plus, on success, that the result verifies against the explicit checker.
//
// This is the widest net in the suite: it explores protocol shapes none of
// the case studies have (asymmetric localities, multi-writer processes,
// disconnected reads).
#include <gtest/gtest.h>

#include <numeric>

#include "analysis/staticinfo.hpp"
#include "protocol/builder.hpp"
#include "core/heuristic.hpp"
#include "core/portfolio.hpp"
#include "core/ranks.hpp"
#include "core/schedule.hpp"
#include "explicitstate/synthesis.hpp"
#include "explicitstate/verify.hpp"
#include "symbolic/decode.hpp"
#include "symbolic/frontier.hpp"
#include "util/rng.hpp"
#include "verify/verify.hpp"

namespace {

using namespace stsyn;

/// A random protocol: 3-4 variables with domains 2-3, 2-4 processes with
/// random read sets (always containing their writes), a random non-empty,
/// non-full invariant built from equalities/inequalities.
protocol::Protocol randomProtocol(util::Rng& rng) {
  protocol::ProtocolBuilder b("random");
  const std::size_t nVars = 3 + rng.below(2);
  std::vector<protocol::VarId> vars;
  std::vector<int> domains;
  for (std::size_t v = 0; v < nVars; ++v) {
    const int d = 2 + static_cast<int>(rng.below(2));
    domains.push_back(d);
    vars.push_back(b.variable("v" + std::to_string(v), d));
  }

  const std::size_t nProcs = 2 + rng.below(3);
  for (std::size_t j = 0; j < nProcs; ++j) {
    // Writes: one or two random variables. Reads: the writes plus a random
    // subset of the rest.
    std::vector<protocol::VarId> writes{vars[rng.below(nVars)]};
    if (rng.below(4) == 0) writes.push_back(vars[rng.below(nVars)]);
    std::vector<protocol::VarId> reads = writes;
    for (const protocol::VarId v : vars) {
      if (rng.below(2) == 0) reads.push_back(v);
    }
    b.process("P" + std::to_string(j), reads, writes);
  }

  // Invariant: conjunction/disjunction of 2-3 random literals. Reject
  // empty/full instances by retrying at the caller.
  protocol::E inv;
  const std::size_t terms = 2 + rng.below(2);
  for (std::size_t t = 0; t < terms; ++t) {
    const protocol::VarId v = vars[rng.below(nVars)];
    const int val = static_cast<int>(rng.below(domains[v]));
    protocol::E lit = rng.flip()
                          ? (protocol::ref(v) == protocol::lit(val))
                          : (protocol::ref(v) != protocol::lit(val));
    if (t == 0) {
      inv = lit;
    } else {
      inv = rng.flip() ? (inv && lit) : (inv || lit);
    }
  }
  b.invariant(inv);
  return b.build();
}

class RandomProtocolDifferential
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomProtocolDifferential, EnginesAgreeAndResultsVerify) {
  util::Rng rng(GetParam() * 7919 + 13);
  for (int instance = 0; instance < 6; ++instance) {
    const protocol::Protocol p = randomProtocol(rng);
    const explicitstate::StateSpace space(p);
    if (space.invariantSize() == 0 || space.invariantSize() == space.size()) {
      continue;  // degenerate invariant: nothing to synthesize
    }

    symbolic::Encoding enc(p);
    symbolic::SymbolicProtocol sp(enc);
    const core::StrongResult sym = core::addStrongConvergence(sp);
    const explicitstate::SynthResult ex =
        explicitstate::addStrongConvergenceExplicit(space);

    // Engine agreement, transition for transition.
    ASSERT_EQ(sym.success, ex.success) << "seed " << GetParam()
                                       << " instance " << instance;
    EXPECT_EQ(static_cast<int>(sym.failure), static_cast<int>(ex.failure));
    EXPECT_EQ(sym.stats.passCompleted, ex.passCompleted);
    std::vector<std::pair<explicitstate::StateId, explicitstate::StateId>>
        symEdges;
    for (const auto& [from, to] :
         symbolic::decodeRelation(enc, sym.relation)) {
      symEdges.emplace_back(from, to);
    }
    ASSERT_EQ(symEdges, ex.relation)
        << "seed " << GetParam() << " instance " << instance;

    if (sym.success) {
      // Soundness: the synthesized protocol verifies in both engines.
      EXPECT_TRUE(verify::check(sp, sym.relation).stronglyStabilizing());
      const auto ts = explicitstate::fromEdges(space, ex.relation);
      const auto report = explicitstate::check(space, ts);
      EXPECT_TRUE(report.stronglyStabilizing());
      // And the interference constraint of Problem III.1 holds.
      EXPECT_TRUE(verify::agreesInsideInvariant(sp, sp.protocolRelation(),
                                                sym.relation));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProtocolDifferential,
                         ::testing::Range<std::uint64_t>(0, 15));

class RandomProtocolWeak : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomProtocolWeak, RanksAgreeWithExplicitBfs) {
  util::Rng rng(GetParam() * 104729 + 7);
  for (int instance = 0; instance < 4; ++instance) {
    const protocol::Protocol p = randomProtocol(rng);
    const explicitstate::StateSpace space(p);
    if (space.invariantSize() == 0) continue;

    symbolic::Encoding enc(p);
    symbolic::SymbolicProtocol sp(enc);
    const core::Ranking ranking = core::computeRanks(sp);
    const explicitstate::SynthResult ex =
        explicitstate::addStrongConvergenceExplicit(space);

    // Rank-by-rank agreement between the two ComputeRanks implementations.
    for (std::size_t i = 0; i < ranking.ranks.size(); ++i) {
      for (const std::uint64_t s :
           symbolic::decodeStates(enc, ranking.ranks[i])) {
        EXPECT_EQ(ex.ranks[s], static_cast<std::int64_t>(i))
            << "seed " << GetParam() << " state " << s;
      }
    }
    for (const std::uint64_t s :
         symbolic::decodeStates(enc, ranking.unreachable)) {
      EXPECT_EQ(ex.ranks[s], explicitstate::kRankInfinity);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProtocolWeak,
                         ::testing::Range<std::uint64_t>(100, 110));

// ---------------------------------------------------------------------------
// Analysis parity under complement edges: satCount, forEachSat (via
// decodeStates) and onePath must agree with the explicit state space on
// random protocols — for a predicate AND its complement, since the
// complemented operand exercises the 2^n - count correction and the
// effective-edge walks that the representation rewrite introduced.
// ---------------------------------------------------------------------------

class AnalysisParity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AnalysisParity, CountEnumerateAndWitnessMatchExplicit) {
  util::Rng rng(GetParam() * 15485863 + 11);
  for (int instance = 0; instance < 4; ++instance) {
    const protocol::Protocol p = randomProtocol(rng);
    const explicitstate::StateSpace space(p);
    symbolic::Encoding enc(p);
    symbolic::SymbolicProtocol sp(enc);
    const bdd::Bdd inv = sp.invariant();
    // A genuinely complemented operand: everything valid outside I.
    const bdd::Bdd outside = enc.validCur() & !inv;

    std::vector<std::uint64_t> inStates;
    std::vector<std::uint64_t> outStates;
    for (explicitstate::StateId s = 0; s < space.size(); ++s) {
      (space.inInvariant(s) ? inStates : outStates).push_back(s);
    }

    // satCount parity (countStates divides out the next-state copy and
    // invalid codes; satCountOf's complement correction sits underneath).
    EXPECT_DOUBLE_EQ(enc.countStates(inv),
                     static_cast<double>(inStates.size()))
        << "seed " << GetParam() << " instance " << instance;
    EXPECT_DOUBLE_EQ(enc.countStates(outside),
                     static_cast<double>(outStates.size()));

    // forEachSat parity: decodeStates enumerates every satisfying cur-state
    // assignment; ascending packed codes must match the explicit scan.
    EXPECT_EQ(symbolic::decodeStates(enc, inv), inStates)
        << "seed " << GetParam() << " instance " << instance;
    EXPECT_EQ(symbolic::decodeStates(enc, outside), outStates);

    // onePath parity: the completed witness lies in the set it was drawn
    // from, on both sides of the complement.
    if (!inv.isFalse()) {
      const auto st = enc.completeState(inv.onePath());
      EXPECT_TRUE(space.inInvariant(symbolic::packState(p, st)));
    }
    if (!outside.isFalse()) {
      const auto st = enc.completeState(outside.onePath());
      EXPECT_FALSE(space.inInvariant(symbolic::packState(p, st)));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AnalysisParity,
                         ::testing::Range<std::uint64_t>(0, 12));

// ---------------------------------------------------------------------------
// Image-policy differential testing: the partitioned engine must agree with
// the monolithic one BDD for BDD — not just up to verification, but on the
// exact node of every product and every synthesized relation.
// ---------------------------------------------------------------------------

class ImagePolicyDifferential
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ImagePolicyDifferential, ProductsAgreeBddForBdd) {
  util::Rng rng(GetParam() * 2654435761 + 17);
  for (int instance = 0; instance < 3; ++instance) {
    const protocol::Protocol p = randomProtocol(rng);
    symbolic::Encoding enc(p);
    symbolic::SymbolicProtocol sp(enc);
    // Random protocols carry no actions of their own (recovery is what
    // gets synthesized), so run the engines over the candidate relations —
    // rich, frame-fenced per-process parts.
    std::vector<bdd::Bdd> parts;
    for (std::size_t j = 0; j < sp.processCount(); ++j) {
      parts.push_back(sp.candidates(j));
    }
    const symbolic::ImageEngine mono(sp, parts,
                                     symbolic::ImagePolicy::Monolithic);
    const symbolic::ImageEngine part(sp, parts,
                                     symbolic::ImagePolicy::PerProcess);
    ASSERT_FALSE(mono.partitioned());
    ASSERT_TRUE(part.partitioned());
    EXPECT_EQ(mono.relation(), part.relation());
    EXPECT_EQ(mono.sources(), part.sources());
    EXPECT_EQ(mono.targets(), part.targets());

    const bdd::Bdd inv = sp.invariant();
    const bdd::Bdd valid = sp.enc().validCur();
    const std::vector<bdd::Bdd> sets{
        enc.manager().falseBdd(), valid, inv, valid & !inv,
        mono.image(inv),          mono.preimage(valid & !inv)};
    for (const bdd::Bdd& s : sets) {
      EXPECT_EQ(mono.image(s), part.image(s))
          << "seed " << GetParam() << " instance " << instance;
      EXPECT_EQ(mono.preimage(s), part.preimage(s))
          << "seed " << GetParam() << " instance " << instance;
      EXPECT_EQ(mono.image(s, valid & !inv), part.image(s, valid & !inv));
      EXPECT_EQ(mono.preimage(s, valid & !inv),
                part.preimage(s, valid & !inv));
      // Restricted engines (the SCC trim loop's shape) agree too.
      EXPECT_EQ(mono.restricted(valid & !inv).image(s),
                part.restricted(valid & !inv).image(s));
    }
  }
}

TEST_P(ImagePolicyDifferential, RanksAgreeBddForBdd) {
  util::Rng rng(GetParam() * 6700417 + 29);
  for (int instance = 0; instance < 2; ++instance) {
    const protocol::Protocol p = randomProtocol(rng);
    symbolic::Encoding enc(p);
    symbolic::SymbolicProtocol sp(enc);
    const core::Ranking monoR =
        core::computeRanks(sp, nullptr, symbolic::ImagePolicy::Monolithic);
    const core::Ranking partR =
        core::computeRanks(sp, nullptr, symbolic::ImagePolicy::PerProcess);
    EXPECT_EQ(monoR.pim, partR.pim);
    EXPECT_EQ(monoR.unreachable, partR.unreachable);
    ASSERT_EQ(monoR.ranks.size(), partR.ranks.size());
    for (std::size_t i = 0; i < monoR.ranks.size(); ++i) {
      EXPECT_EQ(monoR.ranks[i], partR.ranks[i]) << "rank " << i;
    }
  }
}

TEST_P(ImagePolicyDifferential, StrongSynthesisIdenticalUnderBothPolicies) {
  util::Rng rng(GetParam() * 7919 + 13);  // same stream as the engine test
  for (int instance = 0; instance < 3; ++instance) {
    const protocol::Protocol p = randomProtocol(rng);
    const explicitstate::StateSpace space(p);
    if (space.invariantSize() == 0 || space.invariantSize() == space.size()) {
      continue;
    }
    symbolic::Encoding enc(p);
    symbolic::SymbolicProtocol sp(enc);
    core::StrongOptions opt;
    opt.imagePolicy = symbolic::ImagePolicy::Monolithic;
    const core::StrongResult mono = core::addStrongConvergence(sp, opt);
    opt.imagePolicy = symbolic::ImagePolicy::PerProcess;
    const core::StrongResult part = core::addStrongConvergence(sp, opt);

    ASSERT_EQ(mono.success, part.success)
        << "seed " << GetParam() << " instance " << instance;
    EXPECT_EQ(static_cast<int>(mono.failure), static_cast<int>(part.failure));
    EXPECT_EQ(mono.stats.passCompleted, part.stats.passCompleted);
    // Same manager, so Bdd equality is node identity.
    EXPECT_EQ(mono.relation, part.relation);
    EXPECT_EQ(mono.remainingDeadlocks, part.remainingDeadlocks);
    ASSERT_EQ(mono.addedPerProcess.size(), part.addedPerProcess.size());
    for (std::size_t j = 0; j < mono.addedPerProcess.size(); ++j) {
      EXPECT_EQ(mono.addedPerProcess[j], part.addedPerProcess[j])
          << "process " << j;
    }
    // The engines do different numbers of per-part products but must
    // answer the same number of image/preimage queries.
    EXPECT_EQ(mono.stats.imageOps, part.stats.imageOps);
    EXPECT_EQ(mono.stats.preimageOps, part.stats.preimageOps);
    if (mono.success) {
      EXPECT_TRUE(verify::check(sp, mono.relation).stronglyStabilizing());
      EXPECT_TRUE(verify::check(sp, part.relation).stronglyStabilizing());
    }
  }
}

TEST_P(ImagePolicyDifferential, ParallelWorkersIdenticalToSequential) {
  // The worker-pool path (worker-local shadow managers + transfer + OR
  // reduction tree) must reproduce the sequential partitioned products
  // node-for-node at every worker count, including workers > parts.
  util::Rng rng(GetParam() * 2654435761 + 17);  // same stream as Products
  for (int instance = 0; instance < 2; ++instance) {
    const protocol::Protocol p = randomProtocol(rng);
    symbolic::Encoding enc(p);
    symbolic::SymbolicProtocol sp(enc);
    std::vector<bdd::Bdd> parts;
    for (std::size_t j = 0; j < sp.processCount(); ++j) {
      parts.push_back(sp.candidates(j));
    }
    const symbolic::ImageEngine seq(sp, parts,
                                    symbolic::ImagePolicy::PerProcess,
                                    /*workers=*/1);
    const bdd::Bdd inv = sp.invariant();
    const bdd::Bdd valid = sp.enc().validCur();
    const std::vector<bdd::Bdd> sets{enc.manager().falseBdd(), valid, inv,
                                     valid & !inv};
    for (const std::size_t workers : {std::size_t{2}, std::size_t{4}}) {
      const symbolic::ImageEngine par(
          sp, parts, symbolic::ImagePolicy::PerProcess, workers);
      for (const bdd::Bdd& s : sets) {
        EXPECT_EQ(seq.image(s), par.image(s))
            << "seed " << GetParam() << " workers " << workers;
        EXPECT_EQ(seq.preimage(s), par.preimage(s))
            << "seed " << GetParam() << " workers " << workers;
        EXPECT_EQ(seq.image(s, valid & !inv), par.image(s, valid & !inv));
        EXPECT_EQ(seq.preimage(s, valid & !inv),
                  par.preimage(s, valid & !inv));
      }
    }
  }
}

TEST_P(ImagePolicyDifferential, ParallelStrongSynthesisIdenticalToSequential) {
  util::Rng rng(GetParam() * 7919 + 13);  // same stream as the strong test
  for (int instance = 0; instance < 2; ++instance) {
    const protocol::Protocol p = randomProtocol(rng);
    const explicitstate::StateSpace space(p);
    if (space.invariantSize() == 0 || space.invariantSize() == space.size()) {
      continue;
    }
    symbolic::Encoding enc(p);
    symbolic::SymbolicProtocol sp(enc);
    core::StrongOptions opt;
    opt.imagePolicy = symbolic::ImagePolicy::PerProcess;
    opt.imageWorkers = 1;
    const core::StrongResult seq = core::addStrongConvergence(sp, opt);
    opt.imageWorkers = 4;
    const core::StrongResult par = core::addStrongConvergence(sp, opt);

    ASSERT_EQ(seq.success, par.success)
        << "seed " << GetParam() << " instance " << instance;
    EXPECT_EQ(static_cast<int>(seq.failure), static_cast<int>(par.failure));
    EXPECT_EQ(seq.stats.passCompleted, par.stats.passCompleted);
    // Same manager, so Bdd equality is node identity.
    EXPECT_EQ(seq.relation, par.relation);
    EXPECT_EQ(seq.remainingDeadlocks, par.remainingDeadlocks);
    ASSERT_EQ(seq.addedPerProcess.size(), par.addedPerProcess.size());
    for (std::size_t j = 0; j < seq.addedPerProcess.size(); ++j) {
      EXPECT_EQ(seq.addedPerProcess[j], par.addedPerProcess[j])
          << "process " << j;
    }
    EXPECT_EQ(seq.stats.imageOps, par.stats.imageOps);
    EXPECT_EQ(seq.stats.preimageOps, par.stats.preimageOps);
    EXPECT_EQ(seq.stats.imagePartProducts, par.stats.imagePartProducts);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ImagePolicyDifferential,
                         ::testing::Range<std::uint64_t>(0, 24));

// ---------------------------------------------------------------------------
// Variable-order differential testing: the static RCM layout changes the
// BDD level assignment only — synthesis outcomes, passes, and the decoded
// programs must match the declared order exactly.
// ---------------------------------------------------------------------------

class VarOrderDifferential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VarOrderDifferential, StaticOrderSynthesisIdenticalToDeclared) {
  util::Rng rng(GetParam() * 7919 + 13);  // same stream as the engine test
  for (int instance = 0; instance < 3; ++instance) {
    const protocol::Protocol p = randomProtocol(rng);
    const explicitstate::StateSpace space(p);
    if (space.invariantSize() == 0 || space.invariantSize() == space.size()) {
      continue;
    }

    symbolic::EncodingOptions decl;
    decl.varOrder = symbolic::VarOrder::Declared;
    symbolic::Encoding encD(p, decl);
    symbolic::SymbolicProtocol spD(encD);
    const core::StrongResult d = core::addStrongConvergence(spD);

    symbolic::EncodingOptions stat;
    stat.varOrder = symbolic::VarOrder::Static;
    symbolic::Encoding encS(p, stat);
    symbolic::SymbolicProtocol spS(encS);
    const core::StrongResult s = core::addStrongConvergence(spS);

    ASSERT_EQ(d.success, s.success)
        << "seed " << GetParam() << " instance " << instance;
    EXPECT_EQ(static_cast<int>(d.failure), static_cast<int>(s.failure));
    EXPECT_EQ(d.stats.passCompleted, s.stats.passCompleted);
    // Decoded (layout-independent) comparison: identical synthesized
    // relation and identical per-process additions.
    EXPECT_EQ(symbolic::decodeRelation(encD, d.relation),
              symbolic::decodeRelation(encS, s.relation))
        << "seed " << GetParam() << " instance " << instance;
    ASSERT_EQ(d.addedPerProcess.size(), s.addedPerProcess.size());
    for (std::size_t j = 0; j < d.addedPerProcess.size(); ++j) {
      EXPECT_EQ(symbolic::decodeRelation(encD, d.addedPerProcess[j]),
                symbolic::decodeRelation(encS, s.addedPerProcess[j]))
          << "process " << j;
    }
  }
}

TEST_P(VarOrderDifferential, HostileDeclarationOrderStillAgrees) {
  // Scramble the declaration order (renameVars keeps the protocol
  // semantically identical up to state relabeling) so the static order
  // genuinely differs from the identity, then check the same instance
  // against itself under both orders.
  util::Rng rng(GetParam() * 524287 + 41);
  for (int instance = 0; instance < 2; ++instance) {
    protocol::Protocol p = randomProtocol(rng);
    std::vector<protocol::VarId> perm(p.vars.size());
    std::iota(perm.begin(), perm.end(), protocol::VarId{0});
    for (std::size_t i = perm.size(); i > 1; --i) {
      std::swap(perm[i - 1], perm[rng.below(i)]);
    }
    p = protocol::renameVars(p, perm);
    const explicitstate::StateSpace space(p);
    if (space.invariantSize() == 0 || space.invariantSize() == space.size()) {
      continue;
    }

    symbolic::EncodingOptions stat;
    stat.varOrder = symbolic::VarOrder::Static;
    symbolic::Encoding encS(p, stat);
    symbolic::SymbolicProtocol spS(encS);
    const core::StrongResult s = core::addStrongConvergence(spS);

    symbolic::Encoding encD(p);
    symbolic::SymbolicProtocol spD(encD);
    const core::StrongResult d = core::addStrongConvergence(spD);

    ASSERT_EQ(d.success, s.success) << "seed " << GetParam();
    EXPECT_EQ(d.stats.passCompleted, s.stats.passCompleted);
    EXPECT_EQ(symbolic::decodeRelation(encD, d.relation),
              symbolic::decodeRelation(encS, s.relation))
        << "seed " << GetParam() << " instance " << instance;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VarOrderDifferential,
                         ::testing::Range<std::uint64_t>(0, 24));

// ---------------------------------------------------------------------------
// Orbit-pruning differential testing: the pruned portfolio must succeed
// exactly when the unpruned one does, and its winner is predictable from
// the unpruned outcomes plus the static orbit analysis.
// ---------------------------------------------------------------------------

class OrbitPruneDifferential : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(OrbitPruneDifferential, PrunedPortfolioMatchesUnprunedSemantics) {
  util::Rng rng(GetParam() * 1299709 + 3);
  for (int instance = 0; instance < 2; ++instance) {
    const protocol::Protocol p = randomProtocol(rng);
    const explicitstate::StateSpace space(p);
    if (space.invariantSize() == 0 || space.invariantSize() == space.size()) {
      continue;
    }
    std::vector<core::Schedule> schedules;
    for (std::size_t rot = 0; rot < p.processCount(); ++rot) {
      schedules.push_back(core::rotatedSchedule(p.processCount(), rot));
    }

    core::PortfolioOptions plain;
    plain.threads = 1;
    const core::PortfolioResult full =
        core::synthesizePortfolio(p, schedules, plain);
    core::PortfolioOptions pruning;
    pruning.threads = 1;
    pruning.orbitPrune = true;
    const core::PortfolioResult pruned =
        core::synthesizePortfolio(p, schedules, pruning);

    // Solvability must never change (the fallback guarantee).
    ASSERT_EQ(pruned.success(), full.success())
        << "seed " << GetParam() << " instance " << instance;
    if (!full.success()) continue;

    // Winner accounting. When the unpruned winner is itself a
    // representative, the pruned run reproduces it exactly: every
    // representative below it failed (they ran and failed in the unpruned
    // run too), so phase one stops at the same instance. When the winner
    // was a deferred schedule, the pruned run may legitimately settle on a
    // later representative instead (the orbit hash grouped
    // non-interchangeable schedules) — but the winner must then be a
    // successful representative, never an un-run instance.
    const analysis::ProcessOrbits orbits =
        analysis::computeOrbits(p, analysis::buildCommGraph(p));
    const std::vector<std::size_t> reps =
        analysis::scheduleRepresentatives(orbits, schedules);
    ASSERT_LT(pruned.winner, pruned.instances.size());
    EXPECT_TRUE(pruned.instances[pruned.winner].ran);
    EXPECT_TRUE(pruned.instances[pruned.winner].result.success);
    if (reps[full.winner] == full.winner) {
      EXPECT_EQ(pruned.winner, full.winner)
          << "seed " << GetParam() << " instance " << instance;
      // Same schedule + policy => identical synthesis: the winners'
      // decoded programs are identical BDD-for-BDD up to decoding.
      const auto& pw = pruned.instances[pruned.winner];
      const auto& fw = full.instances[full.winner];
      EXPECT_EQ(symbolic::decodeRelation(*pw.encoding, pw.result.relation),
                symbolic::decodeRelation(*fw.encoding, fw.result.relation));
    } else {
      EXPECT_TRUE(pruned.winner == full.winner ||
                  reps[pruned.winner] == pruned.winner)
          << "seed " << GetParam() << " instance " << instance;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OrbitPruneDifferential,
                         ::testing::Range<std::uint64_t>(0, 24));

}  // namespace
