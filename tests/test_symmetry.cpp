// Tests for the rotational-symmetry analysis (paper Section VIII): the
// paper's qualitative observations about which synthesized protocols are
// symmetric become mechanical assertions.
#include <gtest/gtest.h>

#include "casestudies/coloring.hpp"
#include "casestudies/matching.hpp"
#include "casestudies/token_ring.hpp"
#include "casestudies/two_ring.hpp"
#include "core/heuristic.hpp"
#include "extraction/symmetry.hpp"

namespace {

using namespace stsyn;
using extraction::analyzeRotationalSymmetry;

TEST(Symmetry, SynthesizedTokenRingHasDijkstraShape) {
  // Dijkstra's protocol: P1..P_{k-1} identical up to rotation, P0 special
  // (no recovery at all). Expect exactly two classes: {P0} and the rest.
  const protocol::Protocol p = casestudies::tokenRing(4, 3);
  symbolic::Encoding enc(p);
  symbolic::SymbolicProtocol sp(enc);
  core::StrongOptions opt;
  opt.schedule = core::rotatedSchedule(4, 1);
  const core::StrongResult r = core::addStrongConvergence(sp, opt);
  ASSERT_TRUE(r.success);

  const auto report = analyzeRotationalSymmetry(sp, r.addedPerProcess);
  ASSERT_TRUE(report.applicable);
  EXPECT_EQ(report.classCount, 2u);
  EXPECT_EQ(report.classOf[0], 0u);
  for (std::size_t j = 1; j < 4; ++j) {
    EXPECT_EQ(report.classOf[j], report.classOf[1]) << "P" << j;
  }
  EXPECT_FALSE(report.symmetric());  // P0 differs — two classes
}

TEST(Symmetry, OriginalProtocolActionsOfTokenRingSplitTheSameWay) {
  // Sanity on the analysis itself: the INPUT protocol's own actions
  // already have the {P0} vs {P1..} structure.
  const protocol::Protocol p = casestudies::tokenRing(5, 4);
  symbolic::Encoding enc(p);
  symbolic::SymbolicProtocol sp(enc);
  std::vector<bdd::Bdd> perProcess;
  for (std::size_t j = 0; j < 5; ++j) {
    perProcess.push_back(sp.processRelation(j) & !enc.diagonal());
  }
  const auto report = analyzeRotationalSymmetry(sp, perProcess);
  ASSERT_TRUE(report.applicable);
  EXPECT_EQ(report.classCount, 2u);
}

TEST(Symmetry, SynthesizedMatchingIsAsymmetric) {
  // Paper Section VI-A: "the actions of processes in Gouda and Acharya's
  // protocol are symmetric, whereas in our synthesized protocol they are
  // not". Expect more than one class among the five processes.
  const protocol::Protocol p = casestudies::matching(5);
  symbolic::Encoding enc(p);
  symbolic::SymbolicProtocol sp(enc);
  const core::StrongResult r = core::addStrongConvergence(sp);
  ASSERT_TRUE(r.success);
  const auto report = analyzeRotationalSymmetry(sp, r.addedPerProcess);
  ASSERT_TRUE(report.applicable);
  EXPECT_GT(report.classCount, 1u);
  EXPECT_FALSE(report.symmetric());
}

TEST(Symmetry, GoudaAcharyaManualProtocolIsSymmetric) {
  // ...while the manual baseline IS symmetric — all five processes carry
  // the same rotated actions.
  const protocol::Protocol p = casestudies::matchingGoudaAcharyaRepaired(5);
  symbolic::Encoding enc(p);
  symbolic::SymbolicProtocol sp(enc);
  std::vector<bdd::Bdd> perProcess;
  for (std::size_t j = 0; j < 5; ++j) {
    perProcess.push_back(sp.processRelation(j) & !enc.diagonal());
  }
  const auto report = analyzeRotationalSymmetry(sp, perProcess);
  ASSERT_TRUE(report.applicable);
  EXPECT_TRUE(report.symmetric()) << report.classCount << " classes";
}

TEST(Symmetry, ColoringReportsItsClassStructure) {
  const protocol::Protocol p = casestudies::coloring(6);
  symbolic::Encoding enc(p);
  symbolic::SymbolicProtocol sp(enc);
  const core::StrongResult r = core::addStrongConvergence(sp);
  ASSERT_TRUE(r.success);
  const auto report = analyzeRotationalSymmetry(sp, r.addedPerProcess);
  ASSERT_TRUE(report.applicable);
  EXPECT_GE(report.classCount, 1u);
  EXPECT_LE(report.classCount, 6u);
  // Deterministic synthesis => deterministic class structure.
  const core::StrongResult r2 = core::addStrongConvergence(sp);
  const auto report2 = analyzeRotationalSymmetry(sp, r2.addedPerProcess);
  EXPECT_EQ(report.classOf, report2.classOf);
}

TEST(Symmetry, NotApplicableToNonRingShapes) {
  // TR² has nine variables for eight processes (the shared `turn`).
  const protocol::Protocol p = casestudies::twoRing(2);
  symbolic::Encoding enc(p);
  symbolic::SymbolicProtocol sp(enc);
  std::vector<bdd::Bdd> perProcess(8, enc.manager().falseBdd());
  const auto report = analyzeRotationalSymmetry(sp, perProcess);
  EXPECT_FALSE(report.applicable);
  EXPECT_FALSE(report.symmetric());
}

}  // namespace
