// Golden snapshot tests: the extracted recovery actions of the paper's
// case-study instances, pinned as printed .stsyn protocols under
// tests/golden/. A change in the synthesized programs — an accidental
// heuristic reordering, a group-expansion regression, an extraction or
// printer change — shows up as a readable text diff instead of a silent
// behavioural drift. Each snapshot is synthesized under BOTH image
// policies first, asserting the output is policy-invariant.
//
// Regenerate intentionally with:  STSYN_UPDATE_GOLDEN=1 ./test_golden
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "casestudies/coloring.hpp"
#include "casestudies/matching.hpp"
#include "casestudies/token_ring.hpp"
#include "core/heuristic.hpp"
#include "extraction/export.hpp"
#include "lang/printer.hpp"
#include "symbolic/frontier.hpp"

namespace {

using namespace stsyn;

/// Synthesizes strong convergence under `policy` and renders the complete
/// stabilized protocol (original actions + extracted recovery) as .stsyn
/// text. `name` must be expressible in the language grammar (no dashes).
std::string synthesizedText(const protocol::Protocol& p,
                            const core::Schedule& schedule,
                            symbolic::ImagePolicy policy,
                            const std::string& name,
                            std::size_t imageWorkers = 1) {
  symbolic::Encoding enc(p);
  symbolic::SymbolicProtocol sp(enc);
  core::StrongOptions opt;
  opt.schedule = schedule;
  opt.imagePolicy = policy;
  opt.imageWorkers = imageWorkers;
  const core::StrongResult r = core::addStrongConvergence(sp, opt);
  if (!r.success) {
    ADD_FAILURE() << "synthesis failed for " << name << " under "
                  << symbolic::toString(policy) << " with " << imageWorkers
                  << " workers";
    return {};
  }
  protocol::Protocol out = extraction::toProtocol(sp, r.addedPerProcess);
  out.name = name;
  return lang::printProtocol(out);
}

void checkGolden(const std::string& file, const std::string& actual) {
  ASSERT_FALSE(actual.empty());
  const std::filesystem::path path =
      std::filesystem::path(STSYN_GOLDEN_DIR) / file;
  if (std::getenv("STSYN_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual;
    return;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << "; regenerate with STSYN_UPDATE_GOLDEN=1";
  std::stringstream want;
  want << in.rdbuf();
  EXPECT_EQ(actual, want.str())
      << "synthesized protocol drifted from " << path
      << "; if the change is intentional regenerate with "
         "STSYN_UPDATE_GOLDEN=1 and review the diff";
}

/// Both policies — and the parallel worker pool at several widths — must
/// print the identical protocol before it is compared against the
/// snapshot.
void checkPolicyInvariantGolden(const protocol::Protocol& p,
                                const core::Schedule& schedule,
                                const std::string& name) {
  const std::string mono =
      synthesizedText(p, schedule, symbolic::ImagePolicy::Monolithic, name);
  const std::string part =
      synthesizedText(p, schedule, symbolic::ImagePolicy::PerProcess, name);
  EXPECT_EQ(mono, part) << name << ": policies synthesized different text";
  for (const std::size_t workers : {std::size_t{2}, std::size_t{4}}) {
    const std::string parallel = synthesizedText(
        p, schedule, symbolic::ImagePolicy::PerProcess, name, workers);
    EXPECT_EQ(part, parallel)
        << name << ": " << workers
        << "-worker synthesis drifted from the sequential text";
  }
  checkGolden(name + ".stsyn", mono);
}

TEST(Golden, TokenRingRecoveryActionsArePinned) {
  checkPolicyInvariantGolden(casestudies::tokenRing(4, 3),
                             core::rotatedSchedule(4, 1), "token_ring4_ss");
}

TEST(Golden, ColoringRecoveryActionsArePinned) {
  checkPolicyInvariantGolden(casestudies::coloring(5), {}, "coloring5_ss");
}

TEST(Golden, MatchingRecoveryActionsArePinned) {
  checkPolicyInvariantGolden(casestudies::matching(5), {}, "matching5_ss");
}

}  // namespace
