// Case-study tests for three coloring on a ring (paper Section VI-B): the
// locally-correctable case. Synthesis must succeed without ever meeting a
// cycle, and must scale.
#include <gtest/gtest.h>

#include <cmath>

#include "casestudies/coloring.hpp"
#include "core/heuristic.hpp"
#include "explicitstate/verify.hpp"
#include "symbolic/decode.hpp"
#include "verify/verify.hpp"

namespace {

using namespace stsyn;
using symbolic::Encoding;
using symbolic::SymbolicProtocol;

TEST(Coloring, InvariantIsProperColoring) {
  const protocol::Protocol p = casestudies::coloring(5);
  const std::vector<int> proper{0, 1, 2, 0, 1};
  const std::vector<int> clash{0, 1, 1, 0, 1};
  const std::vector<int> wrapClash{0, 1, 2, 0, 0};  // c4 == c0
  EXPECT_TRUE(protocol::evalBool(*p.invariant, proper));
  EXPECT_FALSE(protocol::evalBool(*p.invariant, clash));
  EXPECT_FALSE(protocol::evalBool(*p.invariant, wrapClash));
}

TEST(Coloring, InvariantCountMatchesChromaticPolynomial) {
  // Proper 3-colorings of a cycle C_n: (3-1)^n + (-1)^n * (3-1) = 2^n + 2
  // for even n, 2^n - 2 for odd n.
  for (int n : {3, 4, 5, 6}) {
    const protocol::Protocol p = casestudies::coloring(n);
    const Encoding enc(p);
    const SymbolicProtocol sp(enc);
    const double expected = std::pow(2.0, n) + (n % 2 == 0 ? 2.0 : -2.0);
    EXPECT_DOUBLE_EQ(enc.countStates(sp.invariant()), expected) << n;
  }
}

class ColoringSynthesis : public ::testing::TestWithParam<int> {};

TEST_P(ColoringSynthesis, SynthesizesWithoutAnyCycleFormation) {
  const int k = GetParam();
  const protocol::Protocol p = casestudies::coloring(k);
  const Encoding enc(p);
  const SymbolicProtocol sp(enc);
  const core::StrongResult r = core::addStrongConvergence(sp);
  ASSERT_TRUE(r.success) << "K=" << k << ": " << core::toString(r.failure);
  EXPECT_TRUE(verify::check(sp, r.relation).stronglyStabilizing());
  // Section VII: "the added recovery transitions for the coloring protocol
  // do not create any SCCs outside I".
  EXPECT_EQ(r.stats.sccComponentsFound, 0u) << "K=" << k;
  // Silent in the invariant.
  EXPECT_TRUE((r.relation & sp.invariant()).isFalse());
}

INSTANTIATE_TEST_SUITE_P(RingSizes, ColoringSynthesis,
                         ::testing::Values(3, 4, 5, 7, 8),
                         [](const auto& info) {
                           return "K" + std::to_string(info.param);
                         });

TEST(Coloring, ExplicitOracleOnSmallInstance) {
  const protocol::Protocol p = casestudies::coloring(6);
  const Encoding enc(p);
  const SymbolicProtocol sp(enc);
  const core::StrongResult r = core::addStrongConvergence(sp);
  ASSERT_TRUE(r.success);

  const explicitstate::StateSpace space(p);
  std::vector<std::pair<explicitstate::StateId, explicitstate::StateId>>
      edges;
  for (const auto& [from, to] : symbolic::decodeRelation(enc, r.relation)) {
    edges.emplace_back(from, to);
  }
  const auto ts = explicitstate::fromEdges(space, edges);
  EXPECT_TRUE(explicitstate::check(space, ts).stronglyStabilizing());
}

TEST(Coloring, SynthesizedRecoveryPicksProperColors) {
  // Every added transition ends in a state where the writer no longer
  // clashes with its left neighbour — and never breaks a satisfied
  // neighbour edge (local correctability in action).
  const protocol::Protocol p = casestudies::coloring(5);
  const Encoding enc(p);
  const SymbolicProtocol sp(enc);
  const core::StrongResult r = core::addStrongConvergence(sp);
  ASSERT_TRUE(r.success);
  for (std::size_t j = 0; j < 5; ++j) {
    for (const auto& [from, to] :
         symbolic::decodeRelation(enc, r.addedPerProcess[j])) {
      const auto s1 = symbolic::unpackState(p, to);
      const int left = static_cast<int>((j + 4) % 5);
      EXPECT_NE(s1[j], s1[left])
          << "recovery of P" << j << " leaves a left clash";
    }
  }
}

TEST(Coloring, MoreColorsAlsoSynthesize) {
  const protocol::Protocol p = casestudies::coloring(4, 4);
  const Encoding enc(p);
  const SymbolicProtocol sp(enc);
  const core::StrongResult r = core::addStrongConvergence(sp);
  ASSERT_TRUE(r.success);
  EXPECT_TRUE(verify::check(sp, r.relation).stronglyStabilizing());
}

TEST(Coloring, RejectsDegenerateParameters) {
  EXPECT_THROW((void)casestudies::coloring(2), std::invalid_argument);
  EXPECT_THROW((void)casestudies::coloring(5, 2), std::invalid_argument);
}

}  // namespace
