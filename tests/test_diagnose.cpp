// Tests for the failure-diagnosis module and the recovery-depth metric.
#include <gtest/gtest.h>

#include "protocol/builder.hpp"
#include "casestudies/token_ring.hpp"
#include "core/diagnose.hpp"

namespace {

using namespace stsyn;

TEST(Diagnose, SuccessHasNothingToExplain) {
  const protocol::Protocol p = casestudies::tokenRing(4, 3);
  symbolic::Encoding enc(p);
  symbolic::SymbolicProtocol sp(enc);
  core::StrongOptions opt;
  opt.schedule = core::rotatedSchedule(4, 1);
  const core::StrongResult r = core::addStrongConvergence(sp, opt);
  ASSERT_TRUE(r.success);
  const core::Diagnosis d = core::diagnose(sp, r);
  EXPECT_EQ(d.failure, core::Failure::None);
  EXPECT_TRUE(d.deadlocks.empty());
  EXPECT_NE(d.summary(p).find("succeeded"), std::string::npos);
}

TEST(Diagnose, UnrealizableInstanceProducesWitness) {
  protocol::ProtocolBuilder b("stuck");
  const protocol::VarId x0 = b.variable("x0", 2);
  const protocol::VarId x1 = b.variable("x1", 2);
  b.process("P0", {x0, x1}, {x0});
  b.invariant(protocol::ref(x1) == protocol::lit(0));
  const protocol::Protocol p = b.build();
  symbolic::Encoding enc(p);
  symbolic::SymbolicProtocol sp(enc);
  const core::StrongResult r = core::addStrongConvergence(sp);
  ASSERT_FALSE(r.success);
  const core::Diagnosis d = core::diagnose(sp, r);
  EXPECT_EQ(d.failure, core::Failure::NoStabilizingVersionExists);
  ASSERT_EQ(d.unreachableWitness.size(), 2u);
  EXPECT_EQ(d.unreachableWitness[1], 1);  // x1 = 1 can never be fixed
  EXPECT_NE(d.summary(p).find("UNREALIZABLE"), std::string::npos);
}

TEST(Diagnose, StuckDeadlocksExplainedPerProcess) {
  // The published heuristic (no greedy pass) leaves TR(5,5) deadlocked;
  // the diagnosis must name the reason per process: the groups that could
  // help are blocked by cycle resolution, the others by C1.
  const protocol::Protocol p = casestudies::tokenRing(5, 5);
  symbolic::Encoding enc(p);
  symbolic::SymbolicProtocol sp(enc);
  core::StrongOptions opt;
  opt.greedyCycleResolution = false;
  const core::StrongResult r = core::addStrongConvergence(sp, opt);
  ASSERT_FALSE(r.success);
  ASSERT_EQ(r.failure, core::Failure::UnresolvedDeadlocks);

  const core::Diagnosis d = core::diagnose(sp, r, /*maxWitnesses=*/2);
  EXPECT_DOUBLE_EQ(d.remainingDeadlockCount, 5.0);
  ASSERT_EQ(d.deadlocks.size(), 2u);
  for (const auto& dead : d.deadlocks) {
    ASSERT_EQ(dead.processes.size(), 5u);
    bool someC1 = false;
    bool someExplained = false;
    for (const auto block : dead.processes) {
      someC1 |= block == core::ProcessBlock::BlockedByC1;
      someExplained |= block != core::ProcessBlock::CanAct;
    }
    EXPECT_TRUE(someC1);
    EXPECT_TRUE(someExplained);
    // Crucially: from these states, SOME process could act — the greedy
    // pass exploits exactly that (and the diagnosis points at it).
    EXPECT_NE(std::count(dead.processes.begin(), dead.processes.end(),
                         core::ProcessBlock::CanAct),
              0);
  }
  const std::string text = d.summary(p);
  EXPECT_NE(text.find("deadlock state(s) remained"), std::string::npos);
  EXPECT_NE(text.find("C1"), std::string::npos);
}

TEST(Diagnose, RecoveryDepthOfDijkstraRing) {
  const protocol::Protocol p = casestudies::dijkstraTokenRing(4, 4);
  symbolic::Encoding enc(p);
  symbolic::SymbolicProtocol sp(enc);
  const std::size_t depth = core::recoveryDepth(sp, sp.protocolRelation());
  EXPECT_NE(depth, SIZE_MAX);
  EXPECT_GE(depth, 1u);
  EXPECT_LE(depth, 16u);  // coarse sanity: bounded by |S| / locality
}

TEST(Diagnose, RecoveryDepthDetectsNonConvergence) {
  const protocol::Protocol p = casestudies::tokenRing(4, 3);
  symbolic::Encoding enc(p);
  symbolic::SymbolicProtocol sp(enc);
  // The non-stabilizing input cannot recover from everywhere.
  EXPECT_EQ(core::recoveryDepth(sp, sp.protocolRelation()), SIZE_MAX);
}

TEST(Diagnose, RecoveryDepthMatchesRankBoundOnSynthesized) {
  // Theorem IV.3 flavour: the synthesized protocol cannot beat the rank
  // lower bound — its worst-case recovery depth is at least M.
  const protocol::Protocol p = casestudies::tokenRing(4, 3);
  symbolic::Encoding enc(p);
  symbolic::SymbolicProtocol sp(enc);
  core::StrongOptions opt;
  opt.schedule = core::rotatedSchedule(4, 1);
  const core::StrongResult r = core::addStrongConvergence(sp, opt);
  ASSERT_TRUE(r.success);
  const std::size_t depth = core::recoveryDepth(sp, r.relation);
  EXPECT_NE(depth, SIZE_MAX);
  EXPECT_GE(depth, r.ranking.maxRank());
}

}  // namespace
