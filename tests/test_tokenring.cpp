// Case-study tests for Dijkstra's token ring: the paper's running example
// (Sections II, IV, V) and its headline synthesis result — the heuristic
// re-derives Dijkstra's protocol exactly.
#include <gtest/gtest.h>

#include "casestudies/token_ring.hpp"
#include "core/heuristic.hpp"
#include "explicitstate/verify.hpp"
#include "symbolic/compile.hpp"
#include "symbolic/decode.hpp"
#include "verify/verify.hpp"

namespace {

using namespace stsyn;
using bdd::Bdd;
using symbolic::Encoding;
using symbolic::SymbolicProtocol;

TEST(TokenRing, PaperScenarioStateS1Membership) {
  // Section II: s1 = <1,0,0,0> belongs to S1, with the token at P1.
  const protocol::Protocol p = casestudies::tokenRing(4, 3);
  const std::vector<int> s1{1, 0, 0, 0};
  EXPECT_TRUE(protocol::evalBool(*p.invariant, s1));
  EXPECT_TRUE(protocol::evalBool(*casestudies::tokenAt(p, 1).ptr(), s1));
  EXPECT_FALSE(protocol::evalBool(*casestudies::tokenAt(p, 0).ptr(), s1));
  EXPECT_FALSE(protocol::evalBool(*casestudies::tokenAt(p, 2).ptr(), s1));
}

TEST(TokenRing, InvariantIsTheWavefrontSetOfSizeKD) {
  for (const auto& [k, d] : {std::pair{4, 3}, std::pair{5, 4}}) {
    const protocol::Protocol p = casestudies::tokenRing(k, d);
    const Encoding enc(p);
    const SymbolicProtocol sp(enc);
    EXPECT_DOUBLE_EQ(enc.countStates(sp.invariant()),
                     static_cast<double>(k * d));
  }
}

TEST(TokenRing, ExactlyOneTokenHoldsInEveryLegitimateState) {
  const protocol::Protocol p = casestudies::tokenRing(4, 3);
  const explicitstate::StateSpace space(p);
  for (explicitstate::StateId s = 0; s < space.size(); ++s) {
    if (!space.inInvariant(s)) continue;
    const auto state = space.unpack(s);
    int tokens = 0;
    for (int j = 0; j < 4; ++j) {
      if (protocol::evalBool(*casestudies::tokenAt(p, j).ptr(), state)) {
        ++tokens;
      }
    }
    EXPECT_EQ(tokens, 1) << "state " << s;
  }
}

TEST(TokenRing, ClosureOfS1InTheNonStabilizingProtocol) {
  const protocol::Protocol p = casestudies::tokenRing(4, 3);
  const Encoding enc(p);
  const SymbolicProtocol sp(enc);
  EXPECT_TRUE(verify::isClosed(sp, sp.protocolRelation(), sp.invariant()));
}

TEST(TokenRing, InfiniteCirculationInsideS1) {
  // "Starting from a state in S1, TR generates an infinite sequence of
  // states, where all reached states belong to S1": inside I, every state
  // has exactly one enabled transition, and it stays in I.
  const protocol::Protocol p = casestudies::tokenRing(4, 3);
  const explicitstate::StateSpace space(p);
  const auto ts = explicitstate::buildTransitions(space);
  for (explicitstate::StateId s = 0; s < space.size(); ++s) {
    if (!space.inInvariant(s)) continue;
    ASSERT_EQ(ts.succ[s].size(), 1u);
    EXPECT_TRUE(space.inInvariant(ts.succ[s][0].first));
  }
}

TEST(TokenRing, HeadlineResultSynthesisEqualsDijkstra) {
  // The centerpiece reproduction: with the paper's schedule (P1,P2,P3,P0),
  // pass 2 yields exactly Dijkstra's stabilizing token ring.
  const protocol::Protocol p = casestudies::tokenRing(4, 3);
  const Encoding enc(p);
  const SymbolicProtocol sp(enc);
  core::StrongOptions opt;
  opt.schedule = core::rotatedSchedule(4, 1);
  const core::StrongResult r = core::addStrongConvergence(sp, opt);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.stats.passCompleted, 2);

  const protocol::Protocol dijkstra = casestudies::dijkstraTokenRing(4, 3);
  const Encoding enc2(dijkstra);
  const SymbolicProtocol sp2(enc2);
  EXPECT_EQ(symbolic::decodeRelation(enc, r.relation),
            symbolic::decodeRelation(enc2, sp2.protocolRelation()));
}

TEST(TokenRing, SynthesisAcrossSizesYieldsDijkstraLikeSolutions) {
  // Away from the paper's exact instance (4, 3), the heuristic produces
  // ALTERNATIVE stabilizing solutions (the paper reports "3 different
  // versions" of the token ring); we check the structural properties
  // shared with Dijkstra's protocol rather than exact equality.
  for (const auto& [k, d] : {std::pair{3, 3}, std::pair{4, 4},
                             std::pair{5, 4}}) {
    const protocol::Protocol p = casestudies::tokenRing(k, d);
    const Encoding enc(p);
    const SymbolicProtocol sp(enc);
    core::StrongOptions opt;
    opt.schedule = core::rotatedSchedule(static_cast<std::size_t>(k), 1);
    const core::StrongResult r = core::addStrongConvergence(sp, opt);
    ASSERT_TRUE(r.success) << "k=" << k << " d=" << d;
    EXPECT_TRUE(verify::check(sp, r.relation).stronglyStabilizing())
        << "k=" << k << " d=" << d;
    // Like Dijkstra's protocol: P0 gains no recovery action, every other
    // process's recovery only rewrites its own variable from states where
    // it disagrees with its predecessor.
    EXPECT_TRUE(r.addedPerProcess[0].isFalse()) << "k=" << k << " d=" << d;
    for (int j = 1; j < k; ++j) {
      const bdd::Bdd agreeing =
          r.addedPerProcess[j] &
          compileBool(*(casestudies::tokenAt(p, j) ||
                        protocol::ref(static_cast<protocol::VarId>(j)) ==
                            protocol::ref(static_cast<protocol::VarId>(j - 1)))
                           .ptr(),
                      enc, symbolic::StateCopy::Current);
      EXPECT_TRUE(agreeing.isFalse())
          << "P" << j << " recovery must fire only without a token and in "
             "disagreement (k=" << k << ", d=" << d << ")";
    }
  }
}

TEST(TokenRing, PaperScaleFiveProcessesDomainFive) {
  // "it is only able to find solutions for Dijkstra's token ring with up
  // to 5 processes, each with a variable domain size of 5".
  const protocol::Protocol p = casestudies::tokenRing(5, 5);
  const Encoding enc(p);
  const SymbolicProtocol sp(enc);
  core::StrongOptions opt;
  opt.schedule = core::rotatedSchedule(5, 1);
  const core::StrongResult r = core::addStrongConvergence(sp, opt);
  ASSERT_TRUE(r.success);
  EXPECT_TRUE(verify::check(sp, r.relation).stronglyStabilizing());
}

TEST(TokenRing, RejectsDegenerateParameters) {
  EXPECT_THROW((void)casestudies::tokenRing(1, 3), std::invalid_argument);
  EXPECT_THROW((void)casestudies::tokenRing(4, 1), std::invalid_argument);
  EXPECT_THROW((void)casestudies::tokenAt(casestudies::tokenRing(3, 3), 7),
               std::out_of_range);
}

}  // namespace
