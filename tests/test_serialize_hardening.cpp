// Adversarial corpus for bdd::loadBdd. The serve daemon hands this
// function bytes that arrived over a socket, so every mutated, truncated,
// or hostile document must fail with a clean std::runtime_error — never an
// out-of-bounds index, never a multi-gigabyte allocation, never a hang.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "bdd/bdd.hpp"

namespace {

using stsyn::bdd::Bdd;
using stsyn::bdd::Manager;
using stsyn::bdd::loadBdd;
using stsyn::bdd::saveBdd;

/// Loads `doc` into a fresh 8-variable manager, expecting a clean failure.
void expectRejected(const std::string& doc) {
  Manager m(8);
  std::stringstream is(doc);
  EXPECT_THROW((void)loadBdd(is, m), std::runtime_error) << doc;
}

/// A small known-good v2 document to mutate: (x0 & x1) in an 8-var manager.
std::string goodV2() {
  Manager m(8);
  const Bdd f = m.var(0) & m.var(1);
  std::stringstream os;
  saveBdd(os, f);
  return os.str();
}

TEST(SerializeHardening, GoodDocumentStillLoads) {
  Manager m(8);
  std::stringstream is(goodV2());
  const Bdd f = loadBdd(is, m);
  EXPECT_TRUE(f == (m.var(0) & m.var(1)));
}

TEST(SerializeHardening, HeaderGarbage) {
  expectRejected("");
  expectRejected("bdd");
  expectRejected("bdd 8");
  expectRejected("bdd 8 1");
  expectRejected("bdd3 8 0 0\n");
  expectRejected("BDD 8 0 0\n");
  expectRejected("bdd2 zz 0 0\n");
  expectRejected("\x00\x01\x02\x03");
}

TEST(SerializeHardening, OversizedCounts) {
  // Declared node counts far past any real document must die at the
  // header, not after looping (or allocating) for 2^60 rows.
  expectRejected("bdd2 8 1152921504606846976 0\n");
  expectRejected("bdd 8 18446744073709551615 0\n");
  // Negative counts wrap to huge unsigned values through operator>>.
  expectRejected("bdd2 8 -1 0\n");
  // More variables than the manager has.
  expectRejected("bdd2 9999 0 0\n");
  expectRejected("bdd2 -1 0 0\n");
}

TEST(SerializeHardening, RootReferenceOutOfRange) {
  // v2: ids run 0..nodeCount, refs are (id << 1) | sign.
  expectRejected("bdd2 8 0 4\n");
  expectRejected("bdd2 8 1 6\n1 0 0 1\n");
  expectRejected("bdd2 8 0 -2\n");
  // v1: refs run 0..nodeCount+1.
  expectRejected("bdd 8 0 2\n");
  expectRejected("bdd 8 1 7\n2 0 0 1\n");
}

TEST(SerializeHardening, NodeRowViolations) {
  // v2 row id 0 collides with the TRUE terminal.
  expectRejected("bdd2 8 1 2\n0 0 0 1\n");
  // v2 row id past the declared count.
  expectRejected("bdd2 8 1 2\n7 0 0 1\n");
  // Duplicate row id.
  expectRejected("bdd2 8 2 4\n1 0 0 1\n1 1 0 1\n");
  // Variable index past the declared varCount.
  expectRejected("bdd2 8 1 2\n1 8 0 1\n");
  // Forward reference: row 1 names the not-yet-defined row 2.
  expectRejected("bdd2 8 2 4\n1 0 4 1\n2 1 0 1\n");
  // Dangling child reference.
  expectRejected("bdd2 8 1 2\n1 0 12 1\n");
  // v1 equivalents: terminal collision, out-of-range id, dangling ref.
  expectRejected("bdd 8 1 2\n1 0 0 1\n");
  expectRejected("bdd 8 1 2\n9 0 0 1\n");
  expectRejected("bdd 8 1 2\n2 0 7 1\n");
}

TEST(SerializeHardening, TruncatedTables) {
  const std::string good = goodV2();
  // Chop the document at every byte boundary; each prefix must either be
  // rejected cleanly or (for the rare prefix that is still a complete
  // document) load without crashing.
  for (std::size_t len = 0; len < good.size(); ++len) {
    Manager m(8);
    std::stringstream is(good.substr(0, len));
    try {
      (void)loadBdd(is, m);
    } catch (const std::runtime_error&) {
      // expected for nearly every prefix
    }
  }
}

TEST(SerializeHardening, MutatedTokens) {
  const std::string good = goodV2();
  // Replace each whitespace-separated token with garbage in turn.
  std::vector<std::string> tokens;
  std::string tok;
  std::stringstream split(good);
  while (split >> tok) tokens.push_back(tok);
  ASSERT_GE(tokens.size(), 8u);
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    for (const char* garbage : {"x", "-3", "99999999999999999999", ""}) {
      std::vector<std::string> mutated = tokens;
      mutated[i] = garbage;
      std::string doc;
      for (const auto& t : mutated) {
        if (!t.empty()) doc += t + ' ';
      }
      Manager m(8);
      std::stringstream is(doc);
      try {
        (void)loadBdd(is, m);
      } catch (const std::runtime_error&) {
        // clean rejection is the expected outcome
      } catch (const std::invalid_argument&) {
        FAIL() << "loadBdd leaked std::invalid_argument for: " << doc;
      }
    }
  }
}

TEST(SerializeHardening, RejectionLeavesManagerUsable) {
  Manager m(8);
  std::stringstream bad("bdd2 8 2 4\n1 0 0 1\n1 1 0 1\n");
  EXPECT_THROW((void)loadBdd(bad, m), std::runtime_error);
  // The manager must survive a failed load: build and load again.
  const Bdd f = m.var(3) ^ m.var(4);
  std::stringstream os;
  saveBdd(os, f);
  EXPECT_TRUE(loadBdd(os, m) == f);
}

}  // namespace
