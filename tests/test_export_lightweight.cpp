// Tests for protocol export (extraction::toProtocol) and the lightweight
// scaling driver (core::scaleUp — the paper's Figure 1 loop).
#include <gtest/gtest.h>

#include "casestudies/coloring.hpp"
#include "casestudies/matching.hpp"
#include "casestudies/token_ring.hpp"
#include "core/heuristic.hpp"
#include "core/lightweight.hpp"
#include "explicitstate/verify.hpp"
#include "extraction/export.hpp"
#include "lang/parser.hpp"
#include "lang/printer.hpp"
#include "symbolic/decode.hpp"
#include "verify/verify.hpp"

namespace {

using namespace stsyn;

TEST(Export, CoverToExprMatchesTheCoverPointwise) {
  extraction::Cover cover;
  cover.cubes.push_back({{0b011, 0b100}});  // pos0 in {0,1}, pos1 == 2
  cover.cubes.push_back({{0b100, 0b111}});  // pos0 == 2, pos1 free
  const std::vector<protocol::VarId> reads{0, 1};
  const std::vector<int> domains{3, 3};
  const protocol::E guard =
      extraction::coverToExpr(cover, reads, domains);
  for (int a = 0; a < 3; ++a) {
    for (int b = 0; b < 3; ++b) {
      const std::vector<int> state{a, b};
      const std::vector<int> point{a, b};
      EXPECT_EQ(protocol::evalBool(*guard.ptr(), state),
                cover.contains(point))
          << a << "," << b;
    }
  }
}

TEST(Export, StabilizedTokenRingRoundTripsThroughTheLanguage) {
  const protocol::Protocol p = casestudies::tokenRing(4, 3);
  symbolic::Encoding enc(p);
  symbolic::SymbolicProtocol sp(enc);
  core::StrongOptions opt;
  opt.schedule = core::rotatedSchedule(4, 1);
  const core::StrongResult r = core::addStrongConvergence(sp, opt);
  ASSERT_TRUE(r.success);

  const protocol::Protocol stabilized =
      extraction::toProtocol(sp, r.addedPerProcess);
  EXPECT_EQ(stabilized.name, "token-ring_ss");

  // Same transition semantics as the synthesized relation...
  symbolic::Encoding enc2(stabilized);
  symbolic::SymbolicProtocol sp2(enc2);
  EXPECT_EQ(symbolic::decodeRelation(enc2, sp2.protocolRelation()),
            symbolic::decodeRelation(enc, r.relation));
  // ...it is itself verified stabilizing...
  EXPECT_TRUE(verify::check(sp2, sp2.protocolRelation())
                  .stronglyStabilizing());
  // ...and it survives a print -> parse round trip. (The printer rejects
  // names the grammar cannot express, so rename first.)
  protocol::Protocol printable = stabilized;
  printable.name = "token_ring_ss";
  const protocol::Protocol reparsed =
      lang::parseProtocol(lang::printProtocol(printable));
  symbolic::Encoding enc3(reparsed);
  symbolic::SymbolicProtocol sp3(enc3);
  EXPECT_EQ(symbolic::decodeRelation(enc3, sp3.protocolRelation()),
            symbolic::decodeRelation(enc, r.relation));
}

TEST(Export, StabilizedMatchingVerifiesExplicitly) {
  const protocol::Protocol p = casestudies::matching(5);
  symbolic::Encoding enc(p);
  symbolic::SymbolicProtocol sp(enc);
  const core::StrongResult r = core::addStrongConvergence(sp);
  ASSERT_TRUE(r.success);
  const protocol::Protocol stabilized =
      extraction::toProtocol(sp, r.addedPerProcess);
  // Local predicates carry over.
  EXPECT_EQ(stabilized.localPredicates.size(), 5u);
  const explicitstate::StateSpace space(stabilized);
  const auto ts = explicitstate::buildTransitions(space);
  EXPECT_TRUE(explicitstate::check(space, ts).stronglyStabilizing());
}

TEST(Lightweight, ScalesColoringUntilTheBound) {
  core::ScaleOptions opt;
  opt.kMin = 3;
  opt.kMax = 7;
  opt.budgetSeconds = 120.0;
  const core::ScaleResult r = core::scaleUp(
      [](int k) { return casestudies::coloring(k); }, opt);
  EXPECT_EQ(r.largestSolved(), 7);
  EXPECT_FALSE(r.stoppedOnBudget);
  ASSERT_EQ(r.instances.size(), 5u);
  for (const auto& inst : r.instances) EXPECT_TRUE(inst.success);
}

TEST(Lightweight, StopsAtTheFirstFailure) {
  // TR with |D| = 2 is unrealizable from k = 4 on (a pre-existing cycle
  // outside S1 whose groups extend into S1): the loop must stop there and
  // report it.
  core::ScaleOptions opt;
  opt.kMin = 2;
  opt.kMax = 6;
  opt.schedule = [](int k) {
    return core::rotatedSchedule(static_cast<std::size_t>(k), 1);
  };
  const core::ScaleResult r = core::scaleUp(
      [](int k) { return casestudies::tokenRing(k, 2); }, opt);
  ASSERT_EQ(r.instances.size(), 3u);  // k = 2, 3 succeed; k = 4 fails
  EXPECT_TRUE(r.instances[0].success);
  EXPECT_TRUE(r.instances[1].success);
  EXPECT_FALSE(r.instances.back().success);
  EXPECT_EQ(r.instances.back().failure,
            core::Failure::PreexistingCycleUnremovable);
  EXPECT_EQ(r.largestSolved(), 3);
}

TEST(Lightweight, RespectsTheBudget) {
  core::ScaleOptions opt;
  opt.kMin = 3;
  opt.kMax = 1000;
  opt.step = 1;
  opt.budgetSeconds = 0.5;
  const core::ScaleResult r = core::scaleUp(
      [](int k) { return casestudies::matching(k); }, opt);
  EXPECT_TRUE(r.stoppedOnBudget || !r.instances.back().success);
  EXPECT_GE(r.largestSolved(), 3);
  EXPECT_LT(r.instances.size(), 30u);  // the budget cut it off early
}

TEST(Lightweight, ValidatesItsOptions) {
  EXPECT_THROW((void)core::scaleUp(nullptr), std::invalid_argument);
  core::ScaleOptions bad;
  bad.kMin = 5;
  bad.kMax = 3;
  EXPECT_THROW((void)core::scaleUp(
                   [](int k) { return casestudies::coloring(k); }, bad),
               std::invalid_argument);
}

}  // namespace
