// Tests for the local-correctability analysis backing the paper's Figure 5
// ("Table 1: Local Correctability of Case Studies"):
//   3-Coloring: Yes, Matching: No, Token Ring: No, Two-Ring TR: No.
#include <gtest/gtest.h>

#include "protocol/builder.hpp"
#include "casestudies/coloring.hpp"
#include "casestudies/matching.hpp"
#include "casestudies/token_ring.hpp"
#include "casestudies/two_ring.hpp"
#include "explicitstate/local_correct.hpp"

namespace {

using namespace stsyn;
using explicitstate::analyzeLocalCorrectability;
using explicitstate::LocalCorrectability;

TEST(LocalCorrectability, ColoringIsYes) {
  for (int k : {3, 4, 5, 6}) {
    const auto r = analyzeLocalCorrectability(casestudies::coloring(k));
    EXPECT_EQ(r.verdict, LocalCorrectability::Yes) << "K=" << k;
    EXPECT_TRUE(r.isLocallyCorrectable());
  }
}

TEST(LocalCorrectability, MatchingIsNoWithWitness) {
  for (int k : {4, 5, 6}) {
    const auto r = analyzeLocalCorrectability(casestudies::matching(k));
    EXPECT_EQ(r.verdict, LocalCorrectability::NoCorrectionBlocked)
        << "K=" << k;
    EXPECT_FALSE(r.isLocallyCorrectable());
  }
}

TEST(LocalCorrectability, MatchingWitnessIsGenuine) {
  // Re-check the reported witness by hand: the process's local predicate is
  // violated, and every value it can write either leaves it violated or
  // breaks a neighbour's satisfied predicate.
  const protocol::Protocol p = casestudies::matching(5);
  const auto r = analyzeLocalCorrectability(p);
  ASSERT_EQ(r.verdict, LocalCorrectability::NoCorrectionBlocked);
  const explicitstate::StateSpace space(p);
  std::vector<int> state = space.unpack(r.witnessState);
  const std::size_t j = r.witnessProcess;
  ASSERT_FALSE(protocol::evalBool(*p.localPredicates[j], state));

  const int original = state[j];
  for (int value = 0; value < 3; ++value) {
    state[j] = value;
    bool fixesSelf = protocol::evalBool(*p.localPredicates[j], state);
    bool breaksNeighbour = false;
    for (std::size_t i = 0; i < p.processes.size(); ++i) {
      std::vector<int> before = state;
      before[j] = original;
      if (protocol::evalBool(*p.localPredicates[i], before) &&
          !protocol::evalBool(*p.localPredicates[i], state)) {
        breaksNeighbour = true;
      }
    }
    EXPECT_TRUE(!fixesSelf || breaksNeighbour) << "write " << value;
    state[j] = original;
  }
}

TEST(LocalCorrectability, TokenRingsHaveNoLocalDecomposition) {
  // TR and TR² have a global (disjunctive) invariant — no per-process
  // conjunctive decomposition exists, so they are classified "No".
  const auto tr = analyzeLocalCorrectability(casestudies::tokenRing(4, 3));
  EXPECT_EQ(tr.verdict, LocalCorrectability::NoGlobalInvariant);
  const auto tr2 = analyzeLocalCorrectability(casestudies::twoRing(2));
  EXPECT_EQ(tr2.verdict, LocalCorrectability::NoGlobalInvariant);
}

TEST(LocalCorrectability, UnfaithfulDecompositionDetected) {
  // localPredicates whose conjunction differs from I must be rejected as
  // NoGlobalInvariant, not silently analyzed.
  protocol::ProtocolBuilder b("bogus");
  const protocol::VarId x = b.variable("x", 2);
  const protocol::VarId y = b.variable("y", 2);
  const std::size_t p0 = b.process("P0", {x, y}, {x});
  const std::size_t p1 = b.process("P1", {x, y}, {y});
  b.localPredicate(p0, protocol::ref(x) == protocol::lit(0));
  b.localPredicate(p1, protocol::blit(true));
  b.invariant(protocol::ref(x) == protocol::lit(0) &&
              protocol::ref(y) == protocol::lit(0));  // stricter than AND LC
  const auto r = analyzeLocalCorrectability(b.build());
  EXPECT_EQ(r.verdict, LocalCorrectability::NoGlobalInvariant);
}

TEST(LocalCorrectability, MultiWriterFixesAreSearchedExhaustively) {
  // A process that writes two variables: the fix requires changing both.
  protocol::ProtocolBuilder b("pairfix");
  const protocol::VarId x = b.variable("x", 2);
  const protocol::VarId y = b.variable("y", 2);
  const std::size_t p0 = b.process("P0", {x, y}, {x, y});
  b.localPredicate(p0, protocol::ref(x) == protocol::ref(y) &&
                           protocol::ref(x) == protocol::lit(1));
  b.invariant(protocol::ref(x) == protocol::ref(y) &&
              protocol::ref(x) == protocol::lit(1));
  const auto r = analyzeLocalCorrectability(b.build());
  EXPECT_EQ(r.verdict, LocalCorrectability::Yes);
}

TEST(LocalCorrectability, ToStringCoversAllVerdicts) {
  EXPECT_STREQ(toString(LocalCorrectability::Yes), "Yes");
  EXPECT_NE(std::string(toString(LocalCorrectability::NoCorrectionBlocked))
                .find("No"),
            std::string::npos);
  EXPECT_NE(std::string(toString(LocalCorrectability::NoGlobalInvariant))
                .find("No"),
            std::string::npos);
}

}  // namespace
