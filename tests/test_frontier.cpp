// Unit tests for the partitioned image engine (symbolic/frontier.hpp):
// construction modes and Auto resolution, product equivalence against the
// plain SymbolicProtocol operations, incremental part updates, restricted
// copies, and the shared drain-style work counters.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "casestudies/coloring.hpp"
#include "casestudies/token_ring.hpp"
#include "symbolic/frontier.hpp"

namespace {

using namespace stsyn;
using bdd::Bdd;
using symbolic::ImageEngine;
using symbolic::ImagePolicy;

TEST(ImagePolicy, ParseAndToStringRoundTrip) {
  for (const ImagePolicy p : {ImagePolicy::Monolithic, ImagePolicy::PerProcess,
                              ImagePolicy::Auto}) {
    const auto parsed = symbolic::parseImagePolicy(symbolic::toString(p));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, p);
  }
  EXPECT_FALSE(symbolic::parseImagePolicy("").has_value());
  EXPECT_FALSE(symbolic::parseImagePolicy("Monolithic").has_value());
  EXPECT_FALSE(symbolic::parseImagePolicy("per-process").has_value());
}

struct Fixture {
  protocol::Protocol p = casestudies::tokenRing(4, 3);
  symbolic::Encoding enc{p};
  symbolic::SymbolicProtocol sp{enc};
};

TEST(ImageEngine, ResolvedPolicyPerMode) {
  Fixture f;
  const ImageEngine mono =
      ImageEngine::forProtocol(f.sp, ImagePolicy::Monolithic);
  EXPECT_FALSE(mono.partitioned());
  EXPECT_EQ(mono.policy(), ImagePolicy::Monolithic);
  EXPECT_EQ(mono.partCount(), f.sp.processCount());

  const ImageEngine part =
      ImageEngine::forProtocol(f.sp, ImagePolicy::PerProcess);
  EXPECT_TRUE(part.partitioned());
  EXPECT_EQ(part.policy(), ImagePolicy::PerProcess);

  // This protocol's per-process relations share heavily, so the union
  // stays below the parts' total and Auto resolves monolithic. Workers are
  // pinned to 1: with workers the Auto heuristic deliberately partitions
  // past the size threshold (tested separately below), and this test must
  // hold under any $STSYN_IMAGE_WORKERS (the TSan CI job exports 4).
  const ImageEngine aut =
      ImageEngine::forProtocol(f.sp, ImagePolicy::Auto, /*workers=*/1);
  EXPECT_FALSE(aut.partitioned());

  const ImageEngine single(f.sp, f.sp.protocolRelation());
  EXPECT_FALSE(single.partitioned());
  EXPECT_EQ(single.partCount(), 1u);
  EXPECT_EQ(single.relation(), f.sp.protocolRelation());
}

TEST(ImageEngine, PerProcessConstructionRequiresOnePartPerProcess) {
  Fixture f;
  std::vector<Bdd> parts{f.sp.protocolRelation()};
  EXPECT_THROW(ImageEngine(f.sp, parts, ImagePolicy::PerProcess),
               std::invalid_argument);
}

TEST(ImageEngine, ProductsMatchPlainSymbolicOps) {
  Fixture f;
  const Bdd rel = f.sp.protocolRelation();
  const Bdd inv = f.sp.invariant();
  const Bdd valid = f.enc.validCur();
  for (const ImagePolicy policy :
       {ImagePolicy::Monolithic, ImagePolicy::PerProcess}) {
    const ImageEngine e = ImageEngine::forProtocol(f.sp, policy);
    EXPECT_EQ(e.relation(), rel);
    for (const Bdd& s : {inv, valid & !inv, valid}) {
      EXPECT_EQ(e.image(s), f.sp.image(rel, s));
      EXPECT_EQ(e.preimage(s), f.sp.preimage(rel, s));
      EXPECT_EQ(e.image(s, valid & !inv),
                f.sp.image(rel, s) & valid & !inv);
      EXPECT_EQ(e.preimage(s, valid & !inv),
                f.sp.preimage(rel, s) & valid & !inv);
    }
    EXPECT_EQ(e.sources(), f.sp.sources(rel));
    EXPECT_EQ(e.targets(), f.enc.nextToCur(rel.exists(f.enc.curCube())));
  }
}

TEST(ImageEngine, GenericSplitNeedsNoFrameStructure) {
  Fixture f;
  const Bdd rel = f.sp.protocolRelation();
  const Bdd inv = f.sp.invariant();
  // Split by source-in-invariant: neither half satisfies any process
  // frame, which the generic mode must tolerate.
  const ImageEngine e = ImageEngine::generic(
      f.sp, {rel & inv, rel & !inv}, ImagePolicy::PerProcess);
  EXPECT_TRUE(e.partitioned());
  EXPECT_EQ(e.relation(), rel);
  const Bdd s = f.enc.validCur() & !inv;
  EXPECT_EQ(e.image(s), f.sp.image(rel, s));
  EXPECT_EQ(e.preimage(s), f.sp.preimage(rel, s));
  EXPECT_EQ(e.sources(), f.sp.sources(rel));

  // A single generic part never partitions (nothing to split).
  const ImageEngine one =
      ImageEngine::generic(f.sp, {rel}, ImagePolicy::PerProcess);
  EXPECT_FALSE(one.partitioned());
}

TEST(ImageEngine, UpdateAndGrowPartKeepAllViewsConsistent) {
  Fixture f;
  for (const ImagePolicy policy :
       {ImagePolicy::Monolithic, ImagePolicy::PerProcess}) {
    ImageEngine e = ImageEngine::forProtocol(f.sp, policy);
    (void)e.relation();  // memoize, so growth must maintain it
    const Bdd delta = f.sp.candidates(1) & f.sp.invariant();
    ASSERT_FALSE(delta.isFalse());
    const Bdd grown = e.part(1) | delta;
    e.growPart(1, delta);
    EXPECT_EQ(e.part(1), grown);

    // Against a from-scratch engine over the same parts: identical
    // relation and products.
    std::vector<Bdd> parts;
    for (std::size_t j = 0; j < e.partCount(); ++j) parts.push_back(e.part(j));
    const ImageEngine fresh(f.sp, parts, policy);
    EXPECT_EQ(e.relation(), fresh.relation());
    const Bdd s = f.enc.validCur();
    EXPECT_EQ(e.image(s), fresh.image(s));
    EXPECT_EQ(e.preimage(s), fresh.preimage(s));
    EXPECT_EQ(e.sources(), fresh.sources());

    // updatePart can also shrink; the memoized union is rebuilt.
    e.updatePart(1, fresh.part(1).minus(delta));
    std::vector<Bdd> shrunkParts = parts;
    shrunkParts[1] = shrunkParts[1].minus(delta);
    const ImageEngine shrunk(f.sp, shrunkParts, policy);
    EXPECT_EQ(e.relation(), shrunk.relation());
    EXPECT_EQ(e.image(s), shrunk.image(s));
  }
}

TEST(ImageEngine, RestrictedMatchesRestrictedRelation) {
  Fixture f;
  const Bdd domain = f.enc.validCur() & !f.sp.invariant();
  for (const ImagePolicy policy :
       {ImagePolicy::Monolithic, ImagePolicy::PerProcess}) {
    const ImageEngine e = ImageEngine::forProtocol(f.sp, policy);
    (void)e.relation();
    const ImageEngine r = e.restricted(domain);
    EXPECT_EQ(r.policy(), e.policy());
    EXPECT_EQ(r.relation(),
              f.sp.restrictRel(f.sp.protocolRelation(), domain));
    EXPECT_EQ(r.image(domain), e.image(domain) & domain);
    EXPECT_EQ(r.sources(), f.sp.sources(r.relation()));
  }
}

TEST(ImageEngine, StatsCountAndDrainAcrossSharedCopies) {
  Fixture f;
  const ImageEngine e =
      ImageEngine::forProtocol(f.sp, ImagePolicy::PerProcess);
  EXPECT_EQ(e.stats().imageCalls, 0u);
  (void)e.image(f.sp.invariant());
  (void)e.preimage(f.sp.invariant());
  EXPECT_EQ(e.stats().imageCalls, 1u);
  EXPECT_EQ(e.stats().preimageCalls, 1u);
  // Partitioned: one product per non-false part and query.
  EXPECT_EQ(e.stats().partProducts, 2 * f.sp.processCount());

  // Copies (restricted() in particular) account into the same counter.
  const ImageEngine r = e.restricted(f.enc.validCur());
  (void)r.image(f.sp.invariant());
  EXPECT_EQ(e.stats().imageCalls, 2u);

  const symbolic::ImageEngineStats drained = e.drainStats();
  EXPECT_EQ(drained.imageCalls, 2u);
  EXPECT_EQ(drained.preimageCalls, 1u);
  EXPECT_EQ(e.stats().imageCalls, 0u);
  EXPECT_EQ(r.stats().imageCalls, 0u);  // shared, so the copy drained too
}

TEST(ImageEngine, AutoStaysMonolithicOnCompactUnions) {
  // Every engine the four case studies build keeps its union below the
  // parts' summed node counts (the parts share structure), so Auto must
  // resolve every one of them monolithic — partitioning only pays on
  // sharing-starved unions. coloring(16) is the adversarial case: 16
  // parts whose sum is well past kAutoPartitionNodeThreshold.
  const protocol::Protocol p = casestudies::coloring(16);
  symbolic::Encoding enc(p);
  symbolic::SymbolicProtocol sp(enc);
  std::vector<Bdd> parts;
  std::size_t sum = 0;
  for (std::size_t j = 0; j < sp.processCount(); ++j) {
    parts.push_back(sp.candidates(j));
    sum += parts.back().nodeCount();
  }
  ASSERT_GE(sum, symbolic::kAutoPartitionNodeThreshold);
  // workers pinned to 1; parallel Auto resolution is tested below.
  const ImageEngine e(sp, parts, ImagePolicy::Auto, /*workers=*/1);
  EXPECT_FALSE(e.partitioned());
  ASSERT_LE(e.relation().nodeCount(),
            symbolic::kAutoUnionBlowupFactor * sum);
}

TEST(ImageEngine, AutoPartitionsPastSizeThresholdWhenParallel) {
  // With workers to feed, Auto skips the union-blow-up check: any engine
  // past the size threshold partitions, because partitioning is what
  // exposes the parallelism. Same construction as the test above, which
  // asserts the sequential resolution stays monolithic.
  const protocol::Protocol p = casestudies::coloring(16);
  symbolic::Encoding enc(p);
  symbolic::SymbolicProtocol sp(enc);
  std::vector<Bdd> parts;
  for (std::size_t j = 0; j < sp.processCount(); ++j) {
    parts.push_back(sp.candidates(j));
  }
  const ImageEngine e(sp, parts, ImagePolicy::Auto, /*workers=*/4);
  EXPECT_TRUE(e.partitioned());
  EXPECT_EQ(e.workerCount(), 4u);
}

TEST(ImageEngine, ParallelProductsIdenticalToSequential) {
  Fixture f;
  const ImageEngine seq =
      ImageEngine::forProtocol(f.sp, ImagePolicy::PerProcess, /*workers=*/1);
  EXPECT_EQ(seq.workerCount(), 1u);
  const Bdd inv = f.sp.invariant();
  const Bdd valid = f.enc.validCur();
  for (const std::size_t workers : {std::size_t{2}, std::size_t{4}}) {
    const ImageEngine par =
        ImageEngine::forProtocol(f.sp, ImagePolicy::PerProcess, workers);
    EXPECT_EQ(par.workerCount(), std::min(workers, par.partCount()));
    // Canonicity makes the comparison BDD-for-BDD: same manager, same
    // function, same node.
    for (const Bdd& s : {inv, valid & !inv, valid}) {
      EXPECT_EQ(par.image(s), seq.image(s));
      EXPECT_EQ(par.preimage(s), seq.preimage(s));
      EXPECT_EQ(par.image(s, valid & !inv), seq.image(s, valid & !inv));
      EXPECT_EQ(par.preimage(s, valid & !inv),
                seq.preimage(s, valid & !inv));
    }
  }
}

TEST(ImageEngine, ParallelCountersMatchSequentialProductsAndAddTransfers) {
  Fixture f;
  const ImageEngine seq =
      ImageEngine::forProtocol(f.sp, ImagePolicy::PerProcess, /*workers=*/1);
  const ImageEngine par =
      ImageEngine::forProtocol(f.sp, ImagePolicy::PerProcess, /*workers=*/2);
  // Shard replication already moves nodes at construction.
  EXPECT_GT(par.stats().transferNodes, 0u);
  const Bdd s = f.enc.validCur();
  (void)seq.image(s);
  (void)par.image(s);
  EXPECT_EQ(par.stats().partProducts, seq.stats().partProducts);
  EXPECT_GE(par.stats().reduceDepth, 1u);
  EXPECT_EQ(seq.stats().reduceDepth, 0u);
}

TEST(ImageEngine, ParallelGrowPartReachesWorkerReplicas) {
  Fixture f;
  ImageEngine par =
      ImageEngine::forProtocol(f.sp, ImagePolicy::PerProcess, /*workers=*/2);
  const Bdd delta = f.sp.candidates(1) & f.sp.invariant();
  ASSERT_FALSE(delta.isFalse());
  par.growPart(1, delta);
  std::vector<Bdd> parts;
  for (std::size_t j = 0; j < par.partCount(); ++j) {
    parts.push_back(par.part(j));
  }
  const ImageEngine fresh(f.sp, parts, ImagePolicy::PerProcess, /*workers=*/1);
  const Bdd s = f.enc.validCur();
  EXPECT_EQ(par.image(s), fresh.image(s));
  EXPECT_EQ(par.preimage(s), fresh.preimage(s));

  // updatePart rebuilds the worker replicas wholesale (the delta path
  // above only ever grows them).
  par.updatePart(1, fresh.part(1).minus(delta));
  std::vector<Bdd> shrunk = parts;
  shrunk[1] = shrunk[1].minus(delta);
  const ImageEngine fresh2(f.sp, shrunk, ImagePolicy::PerProcess,
                           /*workers=*/1);
  EXPECT_EQ(par.image(s), fresh2.image(s));
}

TEST(ImageEngine, CopiesDropTheWorkerPool) {
  Fixture f;
  const ImageEngine par =
      ImageEngine::forProtocol(f.sp, ImagePolicy::PerProcess, /*workers=*/2);
  ASSERT_EQ(par.workerCount(), 2u);
  const ImageEngine copy(par);          // the hot loop's candidate copies
  EXPECT_EQ(copy.workerCount(), 1u);
  const ImageEngine r = par.restricted(f.enc.validCur());
  EXPECT_EQ(r.workerCount(), 1u);
  // Copies still compute the same functions, just sequentially.
  const Bdd s = f.enc.validCur() & !f.sp.invariant();
  EXPECT_EQ(copy.image(s), par.image(s));
}

/// Restores one environment variable on scope exit.
class EnvGuard {
 public:
  explicit EnvGuard(const char* name) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) saved_ = old;
    had_ = old != nullptr;
  }
  ~EnvGuard() {
    if (had_) {
      ::setenv(name_, saved_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::string saved_;
  bool had_ = false;
};

TEST(ImageEngineEnv, DefaultImagePolicyReReadsTheEnvironmentEveryCall) {
  // Regression: the default used to be latched in a function-local static,
  // so the first call froze the policy for the whole process and later
  // environment changes were silently ignored.
  const EnvGuard guard("STSYN_IMAGE_POLICY");
  ::setenv("STSYN_IMAGE_POLICY", "monolithic", 1);
  EXPECT_EQ(symbolic::defaultImagePolicy(), ImagePolicy::Monolithic);
  ::setenv("STSYN_IMAGE_POLICY", "perprocess", 1);
  EXPECT_EQ(symbolic::defaultImagePolicy(), ImagePolicy::PerProcess);
  ::unsetenv("STSYN_IMAGE_POLICY");
  EXPECT_EQ(symbolic::defaultImagePolicy(), ImagePolicy::Auto);
  ::setenv("STSYN_IMAGE_POLICY", "bogus", 1);
  EXPECT_EQ(symbolic::defaultImagePolicy(), ImagePolicy::Auto);
}

TEST(ImageEngineEnv, DefaultImageWorkersParsesAndReReadsTheEnvironment) {
  const EnvGuard guard("STSYN_IMAGE_WORKERS");
  ::unsetenv("STSYN_IMAGE_WORKERS");
  EXPECT_EQ(symbolic::defaultImageWorkers(), 1u);
  ::setenv("STSYN_IMAGE_WORKERS", "3", 1);
  EXPECT_EQ(symbolic::defaultImageWorkers(), 3u);
  ::setenv("STSYN_IMAGE_WORKERS", "0", 1);  // 0 = hardware concurrency
  EXPECT_GE(symbolic::defaultImageWorkers(), 1u);
  ::setenv("STSYN_IMAGE_WORKERS", "garbage", 1);
  EXPECT_EQ(symbolic::defaultImageWorkers(), 1u);
  ::setenv("STSYN_IMAGE_WORKERS", "-2", 1);
  EXPECT_EQ(symbolic::defaultImageWorkers(), 1u);
  ::setenv("STSYN_IMAGE_WORKERS", "2", 1);  // re-read, not latched
  EXPECT_EQ(symbolic::defaultImageWorkers(), 2u);
}

}  // namespace
