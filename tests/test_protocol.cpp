// Unit tests for the protocol model: expression AST, evaluation, static
// analyses, structural validation, and the builder.
#include <gtest/gtest.h>

#include "protocol/builder.hpp"

namespace {

using namespace stsyn::protocol;

TEST(Expr, IntEvaluation) {
  // (x0 + 3) mod 4, x1 * 2 - 1
  const E e1 = (ref(0) + lit(3)).mod(4);
  const E e2 = ref(1) * lit(2) - lit(1);
  const std::vector<int> s{2, 3};
  EXPECT_EQ(evalInt(*e1.ptr(), s), 1);
  EXPECT_EQ(evalInt(*e2.ptr(), s), 5);
}

TEST(Expr, EuclideanModIsNonNegative) {
  const E e = (ref(0) - lit(3)).mod(4);
  const std::vector<int> s{1};
  EXPECT_EQ(evalInt(*e.ptr(), s), 2);  // (1-3) mod 4 = 2, not -2
}

TEST(Expr, BoolEvaluation) {
  const E e = (ref(0) == ref(1)).implies(ref(0) < lit(2)) &&
              !(ref(1) >= lit(5));
  const std::vector<int> sTrue{1, 1};
  const std::vector<int> sAlsoTrue{4, 2};  // antecedent false
  const std::vector<int> sFalse{4, 4};
  EXPECT_TRUE(evalBool(*e.ptr(), sTrue));
  EXPECT_TRUE(evalBool(*e.ptr(), sAlsoTrue));
  EXPECT_FALSE(evalBool(*e.ptr(), sFalse));
}

TEST(Expr, IffAndIte) {
  const E iff = (ref(0) == lit(1)).iff(ref(1) == lit(1));
  const std::vector<int> same{1, 1};
  const std::vector<int> diff{1, 0};
  EXPECT_TRUE(evalBool(*iff.ptr(), same));
  EXPECT_FALSE(evalBool(*iff.ptr(), diff));

  const E sel = ite(ref(0) == lit(0), lit(7), ref(1));
  const std::vector<int> zero{0, 3};
  const std::vector<int> nonzero{2, 3};
  EXPECT_EQ(evalInt(*sel.ptr(), zero), 7);
  EXPECT_EQ(evalInt(*sel.ptr(), nonzero), 3);
}

TEST(Expr, TypeErrorsThrow) {
  const std::vector<int> s{0};
  EXPECT_THROW((void)evalInt(*(ref(0) == lit(1)).ptr(), s), std::logic_error);
  EXPECT_THROW((void)evalBool(*(ref(0) + lit(1)).ptr(), s), std::logic_error);
}

TEST(Expr, AllOfAnyOfEmptyAndNonEmpty) {
  const std::vector<int> s{1};
  const std::vector<E> none;
  EXPECT_TRUE(evalBool(*allOf(none).ptr(), s));
  EXPECT_FALSE(evalBool(*anyOf(none).ptr(), s));
  const std::vector<E> two{ref(0) == lit(1), ref(0) == lit(2)};
  EXPECT_FALSE(evalBool(*allOf(two).ptr(), s));
  EXPECT_TRUE(evalBool(*anyOf(two).ptr(), s));
}

TEST(Expr, CollectSupport) {
  const E e = (ref(2) + ref(0)).mod(3) == ref(2);
  std::set<VarId> sup;
  collectSupport(*e.ptr(), sup);
  EXPECT_EQ(sup, (std::set<VarId>{0, 2}));
}

TEST(Expr, PossibleValuesExact) {
  const std::vector<int> domains{3, 2};  // x0 in 0..2, x1 in 0..1
  const E sum = ref(0) + ref(1);
  EXPECT_EQ(possibleValues(*sum.ptr(), domains),
            (std::set<long>{0, 1, 2, 3}));
  const E modded = (ref(0) + lit(2)).mod(3);
  EXPECT_EQ(possibleValues(*modded.ptr(), domains),
            (std::set<long>{0, 1, 2}));
  const E diff = ref(0) - ref(1);
  EXPECT_EQ(possibleValues(*diff.ptr(), domains),
            (std::set<long>{-1, 0, 1, 2}));
}

TEST(Expr, ToStringRendersReadably) {
  const std::vector<std::string> names{"x", "y"};
  const E e = (ref(0) + lit(1)).mod(3) == ref(1);
  EXPECT_EQ(toString(*e.ptr(), names), "(((x + 1) mod 3) == y)");
}

// ---------------------------------------------------------------------------
// Builder and validation.
// ---------------------------------------------------------------------------

TEST(Builder, BuildsAWellFormedProtocol) {
  ProtocolBuilder b("demo");
  const VarId x = b.variable("x", 3);
  const VarId y = b.variable("y", 3);
  const std::size_t p0 = b.process("P0", {x, y}, {x});
  b.action(p0, "inc", ref(x) == ref(y), {{x, (ref(y) + lit(1)).mod(3)}});
  b.invariant(ref(x) != ref(y));
  const Protocol proto = b.build();
  EXPECT_EQ(proto.varCount(), 2u);
  EXPECT_EQ(proto.processCount(), 1u);
  EXPECT_DOUBLE_EQ(proto.stateCount(), 9.0);
  EXPECT_TRUE(proto.processes[0].canRead(y));
  EXPECT_FALSE(proto.processes[0].canWrite(y));
  EXPECT_EQ(proto.unreadableOf(0), std::vector<VarId>{});
}

TEST(Builder, NormalizesReadWriteSets) {
  ProtocolBuilder b("demo");
  const VarId x = b.variable("x", 2);
  const VarId y = b.variable("y", 2);
  const std::size_t p = b.process("P", {y, x, y}, {y, y});
  b.invariant(blit(true));
  const Protocol proto = b.build();
  EXPECT_EQ(proto.processes[p].reads, (std::vector<VarId>{x, y}));
  EXPECT_EQ(proto.processes[p].writes, (std::vector<VarId>{y}));
}

TEST(Validate, RejectsWriteOutsideReads) {
  Protocol proto;
  proto.name = "bad";
  proto.vars = {{"x", 2, {}}, {"y", 2, {}}};
  proto.invariant = blit(true).ptr();
  // Writes y without reading it.
  proto.processes = {{"P", {0}, {0, 1}, {}, {}}};
  EXPECT_THROW(validate(proto), std::invalid_argument);
}

TEST(Validate, RejectsGuardReadingUnreadableVariable) {
  ProtocolBuilder b("bad");
  const VarId x = b.variable("x", 2);
  const VarId y = b.variable("y", 2);
  const std::size_t p = b.process("P", {x}, {x});
  b.action(p, "peek", ref(y) == lit(0), {{x, lit(1)}});
  b.invariant(blit(true));
  EXPECT_THROW((void)b.build(), std::invalid_argument);
}

TEST(Validate, RejectsAssignmentToUnwritableVariable) {
  ProtocolBuilder b("bad");
  const VarId x = b.variable("x", 2);
  const VarId y = b.variable("y", 2);
  const std::size_t p = b.process("P", {x, y}, {x});
  b.action(p, "sneak", blit(true), {{y, lit(1)}});
  b.invariant(blit(true));
  EXPECT_THROW((void)b.build(), std::invalid_argument);
}

TEST(Validate, RejectsDuplicateAssignmentTargets) {
  ProtocolBuilder b("bad");
  const VarId x = b.variable("x", 2);
  const std::size_t p = b.process("P", {x}, {x});
  b.action(p, "twice", blit(true), {{x, lit(0)}, {x, lit(1)}});
  b.invariant(blit(true));
  EXPECT_THROW((void)b.build(), std::invalid_argument);
}

TEST(Validate, RejectsNonBooleanInvariantAndGuards) {
  {
    ProtocolBuilder b("bad");
    b.variable("x", 2);
    b.invariant(E(ref(0).ptr()));  // int-valued invariant
    EXPECT_THROW((void)b.build(), std::invalid_argument);
  }
  {
    ProtocolBuilder b("bad");
    const VarId x = b.variable("x", 2);
    const std::size_t p = b.process("P", {x}, {x});
    b.action(p, "g", E(ref(0).ptr()), {{x, lit(0)}});
    b.invariant(blit(true));
    EXPECT_THROW((void)b.build(), std::invalid_argument);
  }
}

TEST(Validate, RejectsPartialLocalPredicates) {
  ProtocolBuilder b("bad");
  const VarId x = b.variable("x", 2);
  b.process("P0", {x}, {x});
  b.process("P1", {x}, {});
  b.localPredicate(0, ref(x) == lit(0));  // P1 left without one
  b.invariant(blit(true));
  EXPECT_THROW((void)b.build(), std::invalid_argument);
}

TEST(Validate, RejectsLocalPredicateOverUnreadableVariables) {
  ProtocolBuilder b("bad");
  const VarId x = b.variable("x", 2);
  const VarId y = b.variable("y", 2);
  const std::size_t p = b.process("P", {x}, {x});
  b.localPredicate(p, ref(y) == lit(0));
  b.invariant(blit(true));
  EXPECT_THROW((void)b.build(), std::invalid_argument);
}

TEST(Validate, RejectsEmptyDomain) {
  EXPECT_THROW(ProtocolBuilder("bad").variable("x", 0),
               std::invalid_argument);
}

}  // namespace
