// Tests for schedule-portfolio synthesis (the paper's Figure 1: one
// heuristic instance per schedule, run in parallel) and its orbit-based
// schedule pruning.
#include <gtest/gtest.h>

#include "analysis/staticinfo.hpp"
#include "protocol/builder.hpp"
#include "casestudies/matching.hpp"
#include "casestudies/token_ring.hpp"
#include "core/portfolio.hpp"
#include "core/schedule.hpp"
#include "extraction/actions.hpp"
#include "symbolic/decode.hpp"
#include "verify/verify.hpp"

namespace {

using namespace stsyn;
using core::Schedule;

TEST(Schedules, Constructors) {
  EXPECT_EQ(core::identitySchedule(4), (Schedule{0, 1, 2, 3}));
  EXPECT_EQ(core::rotatedSchedule(4, 1), (Schedule{1, 2, 3, 0}));
  EXPECT_EQ(core::rotatedSchedule(4, 5), (Schedule{1, 2, 3, 0}));
  EXPECT_EQ(core::toString(core::rotatedSchedule(3, 2)), "(P2,P0,P1)");
}

TEST(Schedules, Validation) {
  EXPECT_TRUE(core::isValidSchedule({2, 0, 1}, 3));
  EXPECT_FALSE(core::isValidSchedule({2, 0}, 3));       // wrong arity
  EXPECT_FALSE(core::isValidSchedule({2, 2, 1}, 3));    // duplicate
  EXPECT_FALSE(core::isValidSchedule({0, 1, 3}, 3));    // out of range
}

TEST(Schedules, AllSchedulesEnumeratesFactorially) {
  EXPECT_EQ(core::allSchedules(3).size(), 6u);
  EXPECT_EQ(core::allSchedules(4).size(), 24u);
  for (const Schedule& s : core::allSchedules(3)) {
    EXPECT_TRUE(core::isValidSchedule(s, 3));
  }
  EXPECT_THROW((void)core::allSchedules(9), std::invalid_argument);
}

TEST(Portfolio, FindsAWinnerAmongSchedules) {
  const protocol::Protocol p = casestudies::tokenRing(4, 3);
  std::vector<Schedule> schedules;
  for (std::size_t rot = 0; rot < 4; ++rot) {
    schedules.push_back(core::rotatedSchedule(4, rot));
  }
  const core::PortfolioResult r =
      core::synthesizePortfolio(p, schedules, /*threads=*/2);
  ASSERT_TRUE(r.success());
  ASSERT_LT(r.winner, r.instances.size());
  const auto& win = r.instances[r.winner];
  EXPECT_TRUE(win.result.success);
  EXPECT_TRUE(verify::check(*win.symbolic, win.result.relation)
                  .stronglyStabilizing());
  // The result surfaces the winner's stats and wall-clock attribution.
  ASSERT_NE(r.winnerStats(), nullptr);
  EXPECT_EQ(r.winnerStats(), &win.result.stats);
  EXPECT_GT(r.winnerStats()->totalSeconds, 0.0);
  EXPECT_GT(r.wallSeconds, 0.0);
  EXPECT_GE(r.instancesRun(), 1u);
  for (const auto& inst : r.instances) {
    if (inst.ran) {
      EXPECT_GT(inst.wallSeconds, 0.0);
    } else {
      EXPECT_EQ(inst.wallSeconds, 0.0);
    }
  }
}

TEST(Portfolio, WinnerIsFirstSuccessInScheduleOrderDeterministically) {
  const protocol::Protocol p = casestudies::matching(4);
  const std::vector<Schedule> schedules{
      core::identitySchedule(4), core::rotatedSchedule(4, 1),
      core::rotatedSchedule(4, 2)};
  const core::PortfolioResult a =
      core::synthesizePortfolio(p, schedules, /*threads=*/1);
  const core::PortfolioResult b =
      core::synthesizePortfolio(p, schedules, /*threads=*/3);
  ASSERT_TRUE(a.success());
  ASSERT_TRUE(b.success());
  EXPECT_EQ(a.winner, b.winner);
  // Identical synthesized relations regardless of thread count
  // (determinism across parallelism).
  const auto& ia = a.instances[a.winner];
  const auto& ib = b.instances[b.winner];
  EXPECT_EQ(symbolic::decodeRelation(*ia.encoding, ia.result.relation),
            symbolic::decodeRelation(*ib.encoding, ib.result.relation));
}

TEST(Portfolio, StopsClaimingSchedulesAfterFirstSuccess) {
  // One succeeding block of schedules followed by many redundant copies:
  // with a single worker, claims are strictly sequential, so everything
  // after the winner must be skipped (`ran == false`), not run to
  // completion as it used to be.
  const protocol::Protocol p = casestudies::tokenRing(4, 3);
  std::vector<Schedule> schedules;
  for (int copy = 0; copy < 6; ++copy) {
    for (std::size_t rot = 0; rot < 4; ++rot) {
      schedules.push_back(core::rotatedSchedule(4, rot));
    }
  }
  const core::PortfolioResult r =
      core::synthesizePortfolio(p, schedules, /*threads=*/1);
  ASSERT_TRUE(r.success());
  ASSERT_LT(r.winner, 4u);  // some rotation in the first block succeeds
  for (std::size_t i = 0; i <= r.winner; ++i) {
    EXPECT_TRUE(r.instances[i].ran) << i;
  }
  for (std::size_t i = r.winner + 1; i < r.instances.size(); ++i) {
    EXPECT_FALSE(r.instances[i].ran) << i;
    EXPECT_FALSE(r.instances[i].result.success) << i;
    EXPECT_EQ(r.instances[i].wallSeconds, 0.0) << i;
  }
  EXPECT_EQ(r.instancesRun(), r.winner + 1);
}

TEST(Portfolio, EarlyExitKeepsWinnerDeterministicAcrossThreadCounts) {
  // A fast-succeeding schedule up front and a long tail of slower work:
  // early exit must not change the winner or its synthesized relation.
  const protocol::Protocol p = casestudies::tokenRing(4, 3);
  std::vector<Schedule> schedules;
  for (int copy = 0; copy < 3; ++copy) {
    for (std::size_t rot = 0; rot < 4; ++rot) {
      schedules.push_back(core::rotatedSchedule(4, rot));
    }
  }
  const core::PortfolioResult a =
      core::synthesizePortfolio(p, schedules, /*threads=*/1);
  const core::PortfolioResult b =
      core::synthesizePortfolio(p, schedules, /*threads=*/4);
  ASSERT_TRUE(a.success());
  ASSERT_TRUE(b.success());
  EXPECT_EQ(a.winner, b.winner);
  // Every schedule before the winner always runs (claims go out in input
  // order), so the lowest-index success is invariant.
  for (std::size_t i = 0; i <= b.winner; ++i) {
    EXPECT_TRUE(b.instances[i].ran) << i;
  }
  const auto& ia = a.instances[a.winner];
  const auto& ib = b.instances[b.winner];
  EXPECT_EQ(symbolic::decodeRelation(*ia.encoding, ia.result.relation),
            symbolic::decodeRelation(*ib.encoding, ib.result.relation));
}

TEST(Portfolio, EmptyScheduleListYieldsNoWinner) {
  const protocol::Protocol p = casestudies::tokenRing(3, 3);
  const core::PortfolioResult r = core::synthesizePortfolio(p, {});
  EXPECT_FALSE(r.success());
  EXPECT_TRUE(r.instances.empty());
}

TEST(Portfolio, AllInstancesReportedEvenWhenAllFail) {
  // An unrealizable protocol: no schedule can succeed, but every instance
  // must come back with its diagnosis.
  protocol::ProtocolBuilder b("stuck");
  const protocol::VarId x0 = b.variable("x0", 2);
  const protocol::VarId x1 = b.variable("x1", 2);
  b.process("P0", {x0, x1}, {x0});
  b.process("P1", {x0, x1}, {});
  b.invariant(protocol::ref(x1) == protocol::lit(0));
  const protocol::Protocol p = b.build();

  const std::vector<Schedule> schedules{core::identitySchedule(2),
                                        core::rotatedSchedule(2, 1)};
  const core::PortfolioResult r =
      core::synthesizePortfolio(p, schedules, /*threads=*/2);
  EXPECT_FALSE(r.success());
  EXPECT_EQ(r.winnerStats(), nullptr);
  EXPECT_EQ(r.instancesRun(), r.instances.size());
  for (const auto& inst : r.instances) {
    EXPECT_FALSE(inst.result.success);
    EXPECT_EQ(inst.result.failure,
              core::Failure::NoStabilizingVersionExists);
  }
}

TEST(Portfolio, ResultsAreUsableOnTheCallingThreadAfterAParallelRun) {
  // Regression for the ownership handoff: each instance's BDD manager is
  // built on a worker thread, and managers are thread-confined. The
  // portfolio must re-pin every manager to the calling thread on return,
  // or reading/copying/destroying the result BDDs here (below) trips the
  // debug confinement assert.
  const protocol::Protocol p = casestudies::tokenRing(4, 3);
  std::vector<Schedule> schedules;
  for (std::size_t rot = 0; rot < 4; ++rot) {
    schedules.push_back(core::rotatedSchedule(4, rot));
  }
  const core::PortfolioResult r =
      core::synthesizePortfolio(p, schedules, /*threads=*/4);
  ASSERT_TRUE(r.success());
  for (const auto& inst : r.instances) {
    if (!inst.ran) continue;
    // Copying bumps ref counts; nodeCount walks the manager's node pool.
    const bdd::Bdd copy = inst.result.relation;
    EXPECT_GE(copy.nodeCount(), 0u);
  }
}

TEST(Portfolio, NoInstanceClaimedAfterASuccessIsObserved) {
  // Regression for the claim race: a worker used to claim an index between
  // another worker's success and its own early-exit check, run it anyway,
  // and make the set of `ran` instances depend on thread interleaving. The
  // ordered-claim argument gives a timing-independent invariant instead:
  // every ran instance at an index above the winner was claimed BEFORE the
  // success published, so in every execution the prefix [0, winner] ran.
  const protocol::Protocol p = casestudies::tokenRing(4, 3);
  std::vector<Schedule> schedules;
  for (std::size_t rot = 0; rot < 4; ++rot) {
    schedules.push_back(core::rotatedSchedule(4, rot));
  }
  for (const unsigned threads : {1u, 2u, 4u}) {
    const core::PortfolioResult r =
        core::synthesizePortfolio(p, schedules, threads);
    ASSERT_TRUE(r.success());
    for (std::size_t i = 0; i <= r.winner; ++i) {
      EXPECT_TRUE(r.instances[i].ran) << "threads=" << threads;
    }
  }
}

/// The winning instance's extracted guarded-command program, rendered as
/// one string — the byte-identical artifact the orbit-pruning acceptance
/// criterion compares.
std::string extractedProgram(const core::PortfolioResult& r,
                             const protocol::Protocol& p) {
  const auto& win = r.instances[r.winner];
  const std::vector<extraction::ProcessActions> all =
      extraction::extractAllActions(*win.symbolic,
                                    win.result.addedPerProcess);
  std::string out;
  for (const extraction::ProcessActions& pa : all) {
    out += extraction::formatActions(p, pa);
    out += '\n';
  }
  return out;
}

TEST(Portfolio, OrbitPruningDedupesSymmetricSchedules) {
  // Acceptance: on token_ring(4) over all 24 schedules, the orbit
  // signature (position of the distinguished P0 among three
  // interchangeable others) collapses to 4 representatives — 20 instances
  // pruned — and the winner's extracted program is byte-identical to the
  // unpruned run's.
  const protocol::Protocol p = casestudies::tokenRing(4, 3);
  const std::vector<Schedule> schedules = core::allSchedules(4);

  core::PortfolioOptions plain;
  plain.threads = 2;
  const core::PortfolioResult full =
      core::synthesizePortfolio(p, schedules, plain);

  core::PortfolioOptions pruning;
  pruning.threads = 2;
  pruning.orbitPrune = true;
  const core::PortfolioResult pruned =
      core::synthesizePortfolio(p, schedules, pruning);

  ASSERT_TRUE(full.success());
  ASSERT_TRUE(pruned.success());
  EXPECT_EQ(pruned.symmetryOrbits, 2u);
  EXPECT_EQ(pruned.schedulesPruned(), 20u);
  EXPECT_GT(pruned.schedulesPruned(), 0u);
  EXPECT_EQ(full.symmetryOrbits, 0u);  // pruning off: nothing computed
  EXPECT_EQ(full.schedulesPruned(), 0u);

  // Same winner, byte-identical extracted program.
  EXPECT_EQ(pruned.winner, full.winner);
  EXPECT_EQ(extractedProgram(pruned, p), extractedProgram(full, p));

  // Pruned instances that never ran report their identity anyway.
  for (const auto& inst : pruned.instances) {
    EXPECT_EQ(inst.schedule.size(), 4u);
    if (inst.pruned && !inst.ran) {
      EXPECT_FALSE(inst.result.success);
      EXPECT_EQ(inst.wallSeconds, 0.0);
    }
  }
}

TEST(Portfolio, OrbitPruningFallbackKeepsSolvabilityOnFalseSymmetry) {
  // Orbits are a necessary condition, not sufficient: when every
  // representative fails, the deferred instances must still run so the
  // pruned portfolio's success always equals the unpruned one's. An
  // unrealizable protocol with two same-orbit processes exercises the
  // path end to end: the representative fails, the deferred schedule runs
  // in the fallback, everything still fails — and nothing stays pruned.
  protocol::ProtocolBuilder b("stuck");
  const protocol::VarId x0 = b.variable("x0", 2);
  const protocol::VarId x1 = b.variable("x1", 2);
  b.process("P0", {x0, x1}, {});
  b.process("P1", {x0, x1}, {});
  b.invariant(protocol::ref(x0) == protocol::lit(0));
  const protocol::Protocol p = b.build();

  const std::vector<Schedule> schedules = core::allSchedules(2);
  core::PortfolioOptions plain;
  plain.threads = 1;
  const core::PortfolioResult full =
      core::synthesizePortfolio(p, schedules, plain);
  core::PortfolioOptions pruning;
  pruning.threads = 1;
  pruning.orbitPrune = true;
  const core::PortfolioResult pruned =
      core::synthesizePortfolio(p, schedules, pruning);

  ASSERT_FALSE(full.success());
  EXPECT_EQ(pruned.success(), full.success());
  // Both write-less processes share one orbit, so one schedule was
  // deferred...
  EXPECT_EQ(pruned.symmetryOrbits, 1u);
  // ...but the fallback ran it: nothing stayed pruned, and the pruned
  // portfolio did exactly as much work as the unpruned one.
  EXPECT_EQ(pruned.schedulesPruned(), 0u);
  EXPECT_EQ(pruned.instancesRun(), full.instancesRun());
}

TEST(Portfolio, OrbitPruningMatchesStaticAnalysisRepresentatives) {
  // The instances the portfolio defers are exactly the non-representative
  // schedules of analysis::scheduleRepresentatives.
  const protocol::Protocol p = casestudies::tokenRing(4, 3);
  const std::vector<Schedule> schedules = core::allSchedules(4);
  const analysis::ProcessOrbits orbits =
      analysis::computeOrbits(p, analysis::buildCommGraph(p));
  const std::vector<std::size_t> reps =
      analysis::scheduleRepresentatives(orbits, schedules);

  core::PortfolioOptions options;
  options.threads = 1;
  options.orbitPrune = true;
  const core::PortfolioResult r =
      core::synthesizePortfolio(p, schedules, options);
  ASSERT_EQ(r.instances.size(), schedules.size());
  for (std::size_t i = 0; i < schedules.size(); ++i) {
    EXPECT_EQ(r.instances[i].pruned, reps[i] != i) << "schedule " << i;
  }
}

TEST(Portfolio, ImageWorkersForwardedToEveryInstance) {
  const protocol::Protocol p = casestudies::tokenRing(4, 3);
  const std::vector<Schedule> schedules{core::identitySchedule(4)};
  const std::vector<symbolic::ImagePolicy> policies{
      symbolic::ImagePolicy::PerProcess};
  const core::PortfolioResult seq =
      core::synthesizePortfolio(p, schedules, 1, policies, /*imageWorkers=*/1);
  const core::PortfolioResult par =
      core::synthesizePortfolio(p, schedules, 1, policies, /*imageWorkers=*/2);
  ASSERT_TRUE(seq.success());
  ASSERT_TRUE(par.success());
  EXPECT_EQ(par.winnerStats()->imageWorkers, 2u);
  EXPECT_EQ(seq.winnerStats()->imageWorkers, 1u);
  // Identical synthesis either way (canonicity): same pass, same program.
  EXPECT_EQ(par.winnerStats()->passCompleted, seq.winnerStats()->passCompleted);
  EXPECT_EQ(par.winnerStats()->programNodes, seq.winnerStats()->programNodes);
}

}  // namespace
