// Tests for the three-pass strong-convergence heuristic (paper Section V):
// soundness (every success is verified strongly stabilizing, inside and
// outside I), the Problem III.1 output constraints, pass behaviour,
// schedules, and failure modes.
#include <gtest/gtest.h>

#include "protocol/builder.hpp"
#include "casestudies/coloring.hpp"
#include "casestudies/matching.hpp"
#include "casestudies/token_ring.hpp"
#include "core/heuristic.hpp"
#include "explicitstate/verify.hpp"
#include "symbolic/decode.hpp"
#include "verify/verify.hpp"

namespace {

using namespace stsyn;
using bdd::Bdd;
using core::addStrongConvergence;
using core::StrongOptions;
using core::StrongResult;
using symbolic::Encoding;
using symbolic::SymbolicProtocol;

/// Soundness oracle: decodes the result and re-verifies it explicitly with
/// the independent engine (no shared code with the synthesizer).
void verifyExplicitly(const protocol::Protocol& p, const Encoding& enc,
                      const Bdd& relation) {
  const explicitstate::StateSpace space(p);
  std::vector<std::pair<explicitstate::StateId, explicitstate::StateId>>
      edges;
  for (const auto& [from, to] : symbolic::decodeRelation(enc, relation)) {
    edges.emplace_back(from, to);
  }
  const auto ts = explicitstate::fromEdges(space, edges);
  const auto report = explicitstate::check(space, ts);
  EXPECT_TRUE(report.closed);
  EXPECT_TRUE(report.deadlockFree);
  EXPECT_TRUE(report.cycleFree);
  EXPECT_TRUE(report.stronglyStabilizing());
}

TEST(Heuristic, TokenRingSynthesisIsSoundAndVerified) {
  const protocol::Protocol p = casestudies::tokenRing(4, 3);
  const Encoding enc(p);
  const SymbolicProtocol sp(enc);
  StrongOptions opt;
  opt.schedule = core::rotatedSchedule(4, 1);  // paper's (P1,P2,P3,P0)
  const StrongResult r = addStrongConvergence(sp, opt);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.failure, core::Failure::None);
  EXPECT_TRUE(r.remainingDeadlocks.isFalse());

  // Problem III.1 output constraints.
  EXPECT_TRUE(verify::agreesInsideInvariant(sp, sp.protocolRelation(),
                                            r.relation));
  const verify::Report rep = verify::check(sp, r.relation);
  EXPECT_TRUE(rep.stronglyStabilizing());
  verifyExplicitly(p, enc, r.relation);
}

TEST(Heuristic, TokenRingPassOneAddsNothingPassTwoSolves) {
  // Section V's narrative: "We could not add any recovery transitions in
  // the first phase... In the second phase, we add the recovery action".
  const protocol::Protocol p = casestudies::tokenRing(4, 3);
  const Encoding enc(p);
  const SymbolicProtocol sp(enc);
  StrongOptions opt;
  opt.schedule = core::rotatedSchedule(4, 1);

  opt.maxPass = 1;
  const StrongResult r1 = addStrongConvergence(sp, opt);
  EXPECT_FALSE(r1.success);
  EXPECT_EQ(r1.failure, core::Failure::UnresolvedDeadlocks);
  for (const Bdd& added : r1.addedPerProcess) {
    EXPECT_TRUE(added.isFalse());  // pass 1 adds nothing on this input
  }

  opt.maxPass = 2;
  const StrongResult r2 = addStrongConvergence(sp, opt);
  EXPECT_TRUE(r2.success);
  EXPECT_EQ(r2.stats.passCompleted, 2);
}

TEST(Heuristic, AddedTransitionsRespectConstraintC1) {
  const protocol::Protocol p = casestudies::matching(5);
  const Encoding enc(p);
  const SymbolicProtocol sp(enc);
  const StrongResult r = addStrongConvergence(sp);
  ASSERT_TRUE(r.success);
  for (std::size_t j = 0; j < sp.processCount(); ++j) {
    const Bdd& added = r.addedPerProcess[j];
    // No added transition, nor any of its groupmates, starts in I.
    EXPECT_TRUE((sp.groupExpand(j, added) & sp.invariant()).isFalse());
    // Whole groups only: expansion adds nothing new.
    EXPECT_TRUE(sp.groupExpand(j, added) == added);
    // Frame respected: only process-j-writable variables change.
    EXPECT_TRUE(added.implies(sp.frame(j)));
    // No self-loops.
    EXPECT_TRUE((added & enc.diagonal()).isFalse());
  }
}

TEST(Heuristic, ResultRelationIsUnionOfInputAndAdded) {
  const protocol::Protocol p = casestudies::coloring(5);
  const Encoding enc(p);
  const SymbolicProtocol sp(enc);
  const StrongResult r = addStrongConvergence(sp);
  ASSERT_TRUE(r.success);
  Bdd expected = sp.protocolRelation();
  for (const Bdd& added : r.addedPerProcess) expected |= added;
  EXPECT_TRUE(r.relation == expected);
}

TEST(Heuristic, AlreadyStabilizingInputReturnsImmediately) {
  const protocol::Protocol p = casestudies::dijkstraTokenRing(4, 4);
  const Encoding enc(p);
  const SymbolicProtocol sp(enc);
  const StrongResult r = addStrongConvergence(sp);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.stats.passCompleted, 0);  // no pass needed
  EXPECT_TRUE(r.relation == sp.protocolRelation());
}

TEST(Heuristic, UnrealizableInputFailsWithRankInfinity) {
  protocol::ProtocolBuilder b("stuck");
  const protocol::VarId x0 = b.variable("x0", 2);
  const protocol::VarId x1 = b.variable("x1", 2);
  b.process("P0", {x0, x1}, {x0});
  b.invariant(protocol::ref(x1) == protocol::lit(0));
  const protocol::Protocol p = b.build();
  const Encoding enc(p);
  const SymbolicProtocol sp(enc);
  const StrongResult r = addStrongConvergence(sp);
  EXPECT_FALSE(r.success);
  EXPECT_EQ(r.failure, core::Failure::NoStabilizingVersionExists);
}

TEST(Heuristic, PreexistingRemovableCycleIsRemoved) {
  // P0 spins x0 0 -> 1 -> 0 outside I while x1 = 1; I = (x1 == 0). The
  // cycle's groups have no members in I (their guards pin x1 = 1), so
  // preprocessing may remove them, after which recovery must still fix x1.
  protocol::ProtocolBuilder b("spin");
  const protocol::VarId x0 = b.variable("x0", 2);
  const protocol::VarId x1 = b.variable("x1", 2);
  const std::size_t p0 = b.process("P0", {x0, x1}, {x0});
  b.process("P1", {x0, x1}, {x1});
  using protocol::lit;
  using protocol::ref;
  b.action(p0, "spinUp", ref(x1) == lit(1) && ref(x0) == lit(0),
           {{x0, lit(1)}});
  b.action(p0, "spinDown", ref(x1) == lit(1) && ref(x0) == lit(1),
           {{x0, lit(0)}});
  b.invariant(ref(x1) == lit(0));
  const protocol::Protocol p = b.build();

  const Encoding enc(p);
  const SymbolicProtocol sp(enc);
  const StrongResult r = addStrongConvergence(sp);
  ASSERT_TRUE(r.success) << core::toString(r.failure);
  const verify::Report rep = verify::check(sp, r.relation);
  EXPECT_TRUE(rep.stronglyStabilizing());
  // The spin transitions are gone (they were a non-progress cycle).
  const Bdd spin = sp.processRelation(0);
  EXPECT_TRUE((r.relation & spin).isFalse());
}

TEST(Heuristic, PreexistingCycleLockedByGroupmatesInIFails) {
  // Same spin cycle, but now P0 cannot read x1, so the spin groups extend
  // into I and can be neither removed (changes delta_p|I) nor kept (cycle).
  protocol::ProtocolBuilder b("locked-spin");
  const protocol::VarId x0 = b.variable("x0", 2);
  const protocol::VarId x1 = b.variable("x1", 2);
  const std::size_t p0 = b.process("P0", {x0}, {x0});
  b.process("P1", {x0, x1}, {x1});
  using protocol::lit;
  using protocol::ref;
  b.action(p0, "spinUp", ref(x0) == lit(0), {{x0, lit(1)}});
  b.action(p0, "spinDown", ref(x0) == lit(1), {{x0, lit(0)}});
  b.invariant(ref(x1) == lit(0));
  const protocol::Protocol p = b.build();

  const Encoding enc(p);
  const SymbolicProtocol sp(enc);
  const StrongResult r = addStrongConvergence(sp);
  EXPECT_FALSE(r.success);
  EXPECT_EQ(r.failure, core::Failure::PreexistingCycleUnremovable);
}

TEST(Heuristic, InvalidOptionsRejected) {
  const protocol::Protocol p = casestudies::tokenRing(3, 3);
  const Encoding enc(p);
  const SymbolicProtocol sp(enc);
  StrongOptions opt;
  opt.schedule = {0, 0, 1};  // not a permutation
  EXPECT_THROW((void)addStrongConvergence(sp, opt), std::invalid_argument);
  opt.schedule.clear();
  opt.maxPass = 4;
  EXPECT_THROW((void)addStrongConvergence(sp, opt), std::invalid_argument);
}

TEST(Heuristic, GreedyPassResolvesWhatBatchRemovalCannot) {
  // TR(5,5) is the paper-claimed scale where the published three passes
  // alone get stuck: the batch-level Identify_Resolve_Cycles removes every
  // candidate group of one big SCC even though adding a subset is fine.
  // The greedy pass ("pass 4") recovers it; disabling the pass reproduces
  // the published heuristic's failure.
  const protocol::Protocol p = casestudies::tokenRing(5, 5);
  const Encoding enc(p);
  const SymbolicProtocol sp(enc);

  StrongOptions published;
  published.greedyCycleResolution = false;
  const StrongResult r1 = addStrongConvergence(sp, published);
  EXPECT_FALSE(r1.success);
  EXPECT_EQ(r1.failure, core::Failure::UnresolvedDeadlocks);
  EXPECT_FALSE(r1.remainingDeadlocks.isFalse());

  const StrongResult r2 = addStrongConvergence(sp);
  ASSERT_TRUE(r2.success);
  EXPECT_EQ(r2.stats.passCompleted, 4);
  EXPECT_TRUE(verify::check(sp, r2.relation).stronglyStabilizing());
  EXPECT_TRUE(verify::agreesInsideInvariant(sp, sp.protocolRelation(),
                                            r2.relation));
}

TEST(Heuristic, ColoringUsesTheFastPathOnly) {
  // Locally-correctable input: every batch is provably acyclic via the
  // incremental cone test, so no full SCC detection ever runs.
  const protocol::Protocol p = casestudies::coloring(8);
  const Encoding enc(p);
  const SymbolicProtocol sp(enc);
  const StrongResult r = addStrongConvergence(sp);
  ASSERT_TRUE(r.success);
  EXPECT_GT(r.stats.sccFastPathHits, 0u);
  EXPECT_EQ(r.stats.sccComponentsFound, 0u);
}

class ScheduleSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ScheduleSweep, TokenRingSynthesisSucceedsForEveryRotation) {
  const protocol::Protocol p = casestudies::tokenRing(4, 3);
  const Encoding enc(p);
  const SymbolicProtocol sp(enc);
  StrongOptions opt;
  opt.schedule = core::rotatedSchedule(4, GetParam());
  const StrongResult r = addStrongConvergence(sp, opt);
  ASSERT_TRUE(r.success) << core::toString(r.failure);
  EXPECT_TRUE(verify::check(sp, r.relation).stronglyStabilizing());
  verifyExplicitly(p, enc, r.relation);
}

INSTANTIATE_TEST_SUITE_P(Rotations, ScheduleSweep,
                         ::testing::Values(0u, 1u, 2u, 3u));

class SizeSweep : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(SizeSweep, TokenRingScalesWithVerifiedResults) {
  const auto [k, d] = GetParam();
  const protocol::Protocol p = casestudies::tokenRing(k, d);
  const Encoding enc(p);
  const SymbolicProtocol sp(enc);
  StrongOptions opt;
  opt.schedule = core::rotatedSchedule(static_cast<std::size_t>(k), 1);
  const StrongResult r = addStrongConvergence(sp, opt);
  ASSERT_TRUE(r.success) << "k=" << k << " d=" << d << ": "
                         << core::toString(r.failure);
  EXPECT_TRUE(verify::check(sp, r.relation).stronglyStabilizing());
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, SizeSweep,
    ::testing::Values(std::pair{2, 2}, std::pair{3, 3}, std::pair{4, 3},
                      std::pair{4, 4}, std::pair{5, 4}),
    [](const auto& info) {
      return "k" + std::to_string(info.param.first) + "_d" +
             std::to_string(info.param.second);
    });

}  // namespace
