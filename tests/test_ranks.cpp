// Tests for ComputeRanks (paper Figure 2), Theorem IV.1 (weak-convergence
// decision), Lemma IV.2 (no rank-skipping transition), and the weak
// synthesis entry point — all cross-checked against explicit BFS.
#include <gtest/gtest.h>

#include "protocol/builder.hpp"
#include "casestudies/coloring.hpp"
#include "casestudies/matching.hpp"
#include "casestudies/token_ring.hpp"
#include "core/ranks.hpp"
#include "core/weak.hpp"
#include "explicitstate/graph.hpp"
#include "explicitstate/verify.hpp"
#include "symbolic/decode.hpp"

namespace {

using namespace stsyn;
using bdd::Bdd;
using core::computeRanks;
using core::Ranking;
using symbolic::Encoding;
using symbolic::SymbolicProtocol;

TEST(ComputeRanks, TokenRingHasTwoRanksCoveringNotI) {
  // Section V: "ComputeRanks calculates two ranks (M = 2) that cover the
  // entire predicate ¬I" for the 4-process, domain-3 token ring.
  const protocol::Protocol p = casestudies::tokenRing(4, 3);
  const Encoding enc(p);
  const SymbolicProtocol sp(enc);
  const Ranking r = computeRanks(sp);
  EXPECT_EQ(r.maxRank(), 2u);
  EXPECT_TRUE(r.complete());
  // ranks partition valid states.
  Bdd all = enc.manager().falseBdd();
  for (const Bdd& rank : r.ranks) {
    EXPECT_TRUE((all & rank).isFalse());  // disjoint
    all |= rank;
  }
  EXPECT_TRUE(all == enc.validCur());
}

TEST(ComputeRanks, RanksMatchExplicitBfsOnPim) {
  const protocol::Protocol p = casestudies::tokenRing(4, 3);
  const Encoding enc(p);
  const SymbolicProtocol sp(enc);
  const Ranking r = computeRanks(sp);

  // Decode p_im and re-rank explicitly.
  const explicitstate::StateSpace space(p);
  std::vector<std::pair<explicitstate::StateId, explicitstate::StateId>>
      edges;
  for (const auto& [from, to] : symbolic::decodeRelation(enc, r.pim)) {
    edges.emplace_back(from, to);
  }
  const auto ts = explicitstate::fromEdges(space, edges);
  std::vector<bool> target(space.size());
  for (explicitstate::StateId s = 0; s < space.size(); ++s) {
    target[s] = space.inInvariant(s);
  }
  const auto explicitRank = explicitstate::backwardRanks(ts, target);

  for (std::size_t i = 0; i < r.ranks.size(); ++i) {
    for (const std::uint64_t s : symbolic::decodeStates(enc, r.ranks[i])) {
      EXPECT_EQ(explicitRank[s], static_cast<std::int64_t>(i))
          << "state " << s;
    }
  }
}

TEST(ComputeRanks, PimContainsProtocolAndOnlyAddsFromOutsideI) {
  const protocol::Protocol p = casestudies::tokenRing(4, 3);
  const Encoding enc(p);
  const SymbolicProtocol sp(enc);
  const Ranking r = computeRanks(sp);
  EXPECT_TRUE(sp.protocolRelation().implies(r.pim));
  // Every added transition starts outside I (C1 by construction).
  const Bdd added = r.pim.minus(sp.protocolRelation());
  EXPECT_TRUE((added & sp.invariant()).isFalse());
  // And closure is preserved: pim|I == p|I (Step 1's guarantee).
  EXPECT_TRUE(sp.restrictRel(r.pim, sp.invariant()) ==
              sp.restrictRel(sp.protocolRelation(), sp.invariant()));
}

TEST(ComputeRanks, PimAddedGroupsNeverHaveMembersStartingInI) {
  const protocol::Protocol p = casestudies::matching(4);
  const Encoding enc(p);
  const SymbolicProtocol sp(enc);
  const Ranking r = computeRanks(sp);
  for (std::size_t j = 0; j < sp.processCount(); ++j) {
    const Bdd addedJ = (r.pim.minus(sp.protocolRelation())) & sp.frame(j) &
                       sp.candidates(j);
    // Group expansion of what was added must still avoid I entirely.
    EXPECT_TRUE((sp.groupExpand(j, addedJ) & sp.invariant()).isFalse());
  }
}

TEST(ComputeRanks, LemmaIV2NoTransitionSkipsARank) {
  // Lemma IV.2: no protocol transition (and in particular no p_im
  // transition) may jump from Rank[i] to Rank[j] with j + 1 < i.
  const protocol::Protocol p = casestudies::tokenRing(4, 3);
  const Encoding enc(p);
  const SymbolicProtocol sp(enc);
  const Ranking r = computeRanks(sp);
  for (std::size_t i = 2; i <= r.maxRank(); ++i) {
    for (std::size_t j = 0; j + 1 < i; ++j) {
      const Bdd skipping = r.pim & r.ranks[i] & sp.onNext(r.ranks[j]);
      EXPECT_TRUE(skipping.isFalse()) << "jump " << i << " -> " << j;
    }
  }
}

TEST(ComputeRanks, EmptyProtocolRanksEqualHammingLikeDistance) {
  // For the empty coloring protocol, p_im is the full candidate relation;
  // rank i states need exactly i single-process writes to reach a proper
  // coloring.
  const protocol::Protocol p = casestudies::coloring(4);
  const Encoding enc(p);
  const SymbolicProtocol sp(enc);
  const Ranking r = computeRanks(sp);
  EXPECT_TRUE(r.complete());
  // <0,0,1,2>: fixable by one write of P1 (c1 := anything != 0, 2... c1=1?
  // c0=0,c1=0 conflict; set c1 := 1 conflicts c2... c1 can be nothing? With
  // colors {0,1,2}: c1 must differ from c0=0 and c2=1 -> c1=2 works. Rank 1.
  const Bdd s = enc.stateBdd(std::vector<int>{0, 0, 1, 2});
  EXPECT_FALSE((r.ranks[1] & s).isFalse());
  // All-equal <0,0,0,0> needs at least two writes. Verify it is rank 2.
  const Bdd allEq = enc.stateBdd(std::vector<int>{0, 0, 0, 0});
  EXPECT_FALSE((r.ranks[2] & allEq).isFalse());
}

TEST(WeakSynthesis, TokenRingPimIsWeaklyStabilizing) {
  const protocol::Protocol p = casestudies::tokenRing(4, 3);
  const Encoding enc(p);
  const SymbolicProtocol sp(enc);
  const core::WeakResult w = core::addWeakConvergence(sp);
  ASSERT_TRUE(w.success);
  EXPECT_TRUE(w.rankInfinityStates.isFalse());

  // Explicit check of Theorem IV.1's conclusion: every state has a path to
  // I under the returned relation, and I is closed in it.
  const explicitstate::StateSpace space(p);
  std::vector<std::pair<explicitstate::StateId, explicitstate::StateId>>
      edges;
  for (const auto& [from, to] : symbolic::decodeRelation(enc, w.relation)) {
    edges.emplace_back(from, to);
  }
  const auto ts = explicitstate::fromEdges(space, edges);
  const auto report = explicitstate::check(space, ts);
  EXPECT_TRUE(report.closed);
  EXPECT_TRUE(report.weaklyConverges);
}

TEST(WeakSynthesis, ImpossibleWhenAVariableIsUnwritable) {
  // A protocol where no process can write x1: states with x1 = 1 can never
  // recover to I = (x1 == 0), so rank infinity is non-empty and Theorem
  // IV.1 declares the instance unrealizable.
  protocol::ProtocolBuilder b("stuck");
  const protocol::VarId x0 = b.variable("x0", 2);
  const protocol::VarId x1 = b.variable("x1", 2);
  b.process("P0", {x0, x1}, {x0});
  b.invariant(protocol::ref(x1) == protocol::lit(0));
  const protocol::Protocol p = b.build();

  const Encoding enc(p);
  const SymbolicProtocol sp(enc);
  const core::WeakResult w = core::addWeakConvergence(sp);
  EXPECT_FALSE(w.success);
  // Exactly the x1 = 1 half of the state space is stuck.
  EXPECT_DOUBLE_EQ(enc.countStates(w.rankInfinityStates), 2.0);
}

TEST(Stats, RankingTimeAndMAreRecorded) {
  const protocol::Protocol p = casestudies::matching(5);
  const Encoding enc(p);
  const SymbolicProtocol sp(enc);
  core::SynthesisStats stats;
  const Ranking r = computeRanks(sp, &stats);
  EXPECT_EQ(stats.rankCount, r.maxRank());
  EXPECT_GE(stats.rankingSeconds, 0.0);
  EXPECT_GT(r.maxRank(), 0u);
}

}  // namespace
