// Tests for the symbolic verifier and counterexample extraction.
#include <gtest/gtest.h>

#include "casestudies/matching.hpp"
#include "casestudies/token_ring.hpp"
#include "verify/counterexample.hpp"
#include "verify/verify.hpp"

namespace {

using namespace stsyn;
using bdd::Bdd;
using symbolic::Encoding;
using symbolic::SymbolicProtocol;

TEST(Verify, DijkstraTokenRingPassesEverything) {
  const protocol::Protocol p = casestudies::dijkstraTokenRing(4, 4);
  const Encoding enc(p);
  const SymbolicProtocol sp(enc);
  const verify::Report r = verify::check(sp, sp.protocolRelation());
  EXPECT_TRUE(r.closed);
  EXPECT_TRUE(r.deadlockFree);
  EXPECT_TRUE(r.cycleFree);
  EXPECT_TRUE(r.weaklyConverges);
  EXPECT_TRUE(r.stronglyStabilizing());
  EXPECT_TRUE(r.weaklyStabilizing());
}

TEST(Verify, NonStabilizingTokenRingDeadlocks) {
  const protocol::Protocol p = casestudies::tokenRing(4, 3);
  const Encoding enc(p);
  const SymbolicProtocol sp(enc);
  const verify::Report r = verify::check(sp, sp.protocolRelation());
  EXPECT_TRUE(r.closed);
  EXPECT_FALSE(r.deadlockFree);
  EXPECT_DOUBLE_EQ(enc.countStates(r.deadlocks), 18.0);
  EXPECT_FALSE(r.weaklyConverges);
  EXPECT_FALSE(r.stronglyConverges());
}

TEST(Verify, IsClosedDetectsEscapes) {
  const protocol::Protocol p = casestudies::tokenRing(4, 3);
  const Encoding enc(p);
  const SymbolicProtocol sp(enc);
  EXPECT_TRUE(verify::isClosed(sp, sp.protocolRelation(), sp.invariant()));
  // The whole valid space is trivially closed; the empty set too.
  EXPECT_TRUE(verify::isClosed(sp, sp.protocolRelation(), enc.validCur()));
  EXPECT_TRUE(
      verify::isClosed(sp, sp.protocolRelation(), enc.manager().falseBdd()));
  // A single non-invariant state with an outgoing transition is not closed.
  const Bdd notClosed = enc.stateBdd(std::vector<int>{1, 0, 0, 0}) |
                        enc.stateBdd(std::vector<int>{2, 0, 0, 0});
  EXPECT_FALSE(verify::isClosed(sp, sp.protocolRelation(), notClosed));
}

TEST(Verify, AgreesInsideInvariantDetectsTampering) {
  const protocol::Protocol p = casestudies::tokenRing(4, 3);
  const Encoding enc(p);
  const SymbolicProtocol sp(enc);
  const Bdd original = sp.protocolRelation();
  EXPECT_TRUE(verify::agreesInsideInvariant(sp, original, original));
  // Removing a transition that lives inside I must be detected.
  const Bdd insideI = sp.restrictRel(original, sp.invariant());
  ASSERT_FALSE(insideI.isFalse());
  EXPECT_FALSE(
      verify::agreesInsideInvariant(sp, original, original.minus(insideI)));
  // Adding transitions outside I is fine.
  const Bdd extra = sp.candidates(1) & !sp.invariant();
  EXPECT_TRUE(verify::agreesInsideInvariant(sp, original, original | extra));
}

TEST(Verify, GoudaAcharyaPrintedActionsBreakClosure) {
  // The four manual actions exactly as printed in the paper's Section VI-A
  // are not even closed in IMM: from a legitimate state with m_i = self,
  // the third action (guarded on m_{i-1} = left) fires and leaves IMM.
  // Our verifier pinpoints this flaw mechanically.
  const protocol::Protocol p = casestudies::matchingGoudaAcharyaAsPrinted(5);
  const Encoding enc(p);
  const SymbolicProtocol sp(enc);
  const verify::Report r = verify::check(sp, sp.protocolRelation());
  EXPECT_FALSE(r.closed);
}

TEST(Verify, GoudaAcharyaRepairedIsClosedButNotConvergent) {
  // With the guards repaired the protocol is closed and cycle-free but
  // still NOT self-stabilizing: the all-self state deadlocks outside IMM.
  // This reproduces the paper's headline finding that the manually
  // designed matching protocol is flawed (our analysis pinpoints a
  // deadlock; the paper reports a non-progress cycle in the original).
  const protocol::Protocol p = casestudies::matchingGoudaAcharyaRepaired(5);
  const Encoding enc(p);
  const SymbolicProtocol sp(enc);
  const verify::Report r = verify::check(sp, sp.protocolRelation());
  EXPECT_TRUE(r.closed);
  EXPECT_FALSE(r.deadlockFree);
  const Bdd allSelf = enc.stateBdd(std::vector<int>(
      5, casestudies::kSelf));
  EXPECT_FALSE((r.deadlocks & allSelf).isFalse());
  EXPECT_FALSE(r.stronglyConverges());
}

TEST(Counterexample, ExtractsAConcreteCycleWithProcessSchedule) {
  // Plant the paper's Section IV cycle: TR plus the recovery action
  // x1 = x0 + 1 -> x1 := x0 - 1 cycles through <1,2,1,0>.
  const protocol::Protocol p = casestudies::tokenRing(4, 3);
  const Encoding enc(p);
  const SymbolicProtocol sp(enc);
  Bdd recovery = enc.manager().falseBdd();
  for (int x0 = 0; x0 < 3; ++x0) {
    recovery |= enc.curValue(0, x0) & enc.curValue(1, (x0 + 1) % 3) &
                enc.nextValue(1, (x0 + 2) % 3) & enc.unchanged(0) &
                enc.unchanged(2) & enc.unchanged(3);
  }
  const Bdd rel = sp.protocolRelation() | (recovery & enc.validCur());
  const verify::Report r = verify::check(sp, rel);
  ASSERT_FALSE(r.cycles.empty());

  std::vector<Bdd> perProcess;
  for (std::size_t j = 0; j < 4; ++j) {
    Bdd pj = sp.processRelation(j);
    if (j == 1) pj |= recovery & enc.validCur();
    perProcess.push_back(pj);
  }
  const auto cycle = verify::extractCycle(sp, rel, r.cycles[0], perProcess);
  ASSERT_GE(cycle.size(), 2u);
  EXPECT_EQ(cycle.front().state, cycle.back().state);
  // Every step is attributed to a process and is a real transition.
  for (std::size_t i = 0; i + 1 < cycle.size(); ++i) {
    EXPECT_NE(cycle[i].process, SIZE_MAX);
    const Bdd edge = enc.stateBdd(cycle[i].state) &
                     sp.onNext(enc.stateBdd(cycle[i + 1].state));
    EXPECT_FALSE((rel & edge).isFalse());
  }
  // Formatting helpers produce non-empty renderings.
  EXPECT_FALSE(verify::formatCycle(p, cycle).empty());
  EXPECT_FALSE(verify::cycleSchedule(p, cycle).empty());
}

TEST(Counterexample, FormatStateUsesValueNames) {
  const protocol::Protocol p = casestudies::matching(3);
  const std::vector<int> s{casestudies::kLeft, casestudies::kSelf,
                           casestudies::kRight};
  const std::string txt = verify::formatState(
      p, s, [](protocol::VarId, int v) {
        return std::string(casestudies::pointerName(v));
      });
  EXPECT_EQ(txt, "<m0=left, m1=self, m2=right>");
}

}  // namespace
