// Tests for cube minimization and guarded-command extraction.
#include <gtest/gtest.h>

#include "casestudies/token_ring.hpp"
#include "core/heuristic.hpp"
#include "extraction/actions.hpp"
#include "util/rng.hpp"

namespace {

using namespace stsyn;
using extraction::Cover;
using extraction::coverFromPoints;
using extraction::Cube;
using extraction::minimize;

TEST(Cubes, ContainsChecksEveryPosition) {
  Cube c;
  c.sets = {0b011, 0b100};  // pos0 in {0,1}, pos1 == 2
  const std::vector<int> in{1, 2};
  const std::vector<int> out{2, 2};
  EXPECT_TRUE(c.contains(in));
  EXPECT_FALSE(c.contains(out));
}

TEST(Cubes, MinimizeMergesAdjacentPoints) {
  // {<0,0>, <1,0>, <2,0>} over domains {3,3} merges into one cube.
  const std::vector<std::vector<int>> points{{0, 0}, {1, 0}, {2, 0}};
  Cover cover = coverFromPoints(points);
  minimize(cover);
  ASSERT_EQ(cover.cubes.size(), 1u);
  EXPECT_EQ(cover.cubes[0].sets[0], 0b111u);
  EXPECT_EQ(cover.cubes[0].sets[1], 0b001u);
}

TEST(Cubes, MinimizeDropsSubsumedCubes) {
  const std::vector<std::vector<int>> points{{0, 0}, {0, 1}, {0, 0}};
  Cover cover = coverFromPoints(points);
  minimize(cover);
  ASSERT_EQ(cover.cubes.size(), 1u);  // duplicate + merge
}

class CubeMinimizeRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CubeMinimizeRandom, PreservesTheCoveredSetExactly) {
  util::Rng rng(GetParam());
  const std::vector<int> domains{3, 4, 2, 3};
  std::vector<std::vector<int>> points;
  const std::size_t n = 1 + rng.below(30);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<int> p;
    for (int d : domains) p.push_back(static_cast<int>(rng.below(d)));
    points.push_back(std::move(p));
  }
  Cover cover = coverFromPoints(points);
  const std::size_t before = cover.countPoints(domains);
  minimize(cover);
  EXPECT_EQ(cover.countPoints(domains), before);
  // Every original point still covered.
  for (const auto& p : points) EXPECT_TRUE(cover.contains(p));
  // Never more cubes than points.
  EXPECT_LE(cover.cubes.size(), points.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CubeMinimizeRandom,
                         ::testing::Range<std::uint64_t>(0, 25));

TEST(Extraction, RecoveryActionsOfSynthesizedTokenRing) {
  // Pass 2 adds exactly the paper's recovery action to each P_j (j >= 1):
  // x_j = x_{j-1} + 1 -> x_j := x_{j-1}, and nothing to P0.
  const protocol::Protocol p = casestudies::tokenRing(4, 3);
  const symbolic::Encoding enc(p);
  const symbolic::SymbolicProtocol sp(enc);
  core::StrongOptions opt;
  opt.schedule = core::rotatedSchedule(4, 1);
  const core::StrongResult r = core::addStrongConvergence(sp, opt);
  ASSERT_TRUE(r.success);

  const auto all = extraction::extractAllActions(sp, r.addedPerProcess);
  EXPECT_TRUE(all[0].actions.empty()) << "P0 must gain no recovery";
  for (std::size_t j = 1; j < 4; ++j) {
    // P_j reads {x_{j-1}, x_j}; the added relation maps, for each value v
    // of x_{j-1}, the single guard x_j = v + 1 to the write x_j := v.
    const auto& pa = all[j];
    ASSERT_EQ(pa.actions.size(), 3u) << "P" << j;
    for (const auto& action : pa.actions) {
      ASSERT_EQ(action.writeValues.size(), 1u);
      const int target = action.writeValues[0];
      // guard: x_{j-1} == target && x_j == target + 1 (mod 3)
      ASSERT_EQ(action.guard.cubes.size(), 1u);
      const auto& cube = action.guard.cubes[0];
      EXPECT_EQ(cube.sets[0], 1u << target);             // x_{j-1}
      EXPECT_EQ(cube.sets[1], 1u << ((target + 1) % 3));  // x_j
    }
  }
}

TEST(Extraction, ProjectionLosesNoTransitions) {
  // Re-executing the extracted actions regenerates exactly the relation
  // they were extracted from.
  const protocol::Protocol p = casestudies::tokenRing(4, 3);
  const symbolic::Encoding enc(p);
  const symbolic::SymbolicProtocol sp(enc);
  core::StrongOptions opt;
  opt.schedule = core::rotatedSchedule(4, 1);
  const core::StrongResult r = core::addStrongConvergence(sp, opt);
  ASSERT_TRUE(r.success);

  for (std::size_t j = 0; j < 4; ++j) {
    const auto pa = extraction::extractProcessActions(sp, j,
                                                      r.addedPerProcess[j]);
    bdd::Bdd rebuilt = enc.manager().falseBdd();
    const auto& proc = p.processes[j];
    for (const auto& action : pa.actions) {
      bdd::Bdd guard = enc.manager().falseBdd();
      for (const auto& cube : action.guard.cubes) {
        bdd::Bdd conj = enc.manager().trueBdd();
        for (std::size_t rIdx = 0; rIdx < proc.reads.size(); ++rIdx) {
          bdd::Bdd anyVal = enc.manager().falseBdd();
          for (int v = 0; v < p.vars[proc.reads[rIdx]].domain; ++v) {
            if (cube.sets[rIdx] >> v & 1u) {
              anyVal |= enc.curValue(proc.reads[rIdx], v);
            }
          }
          conj &= anyVal;
        }
        guard |= conj;
      }
      bdd::Bdd write = enc.manager().trueBdd();
      for (std::size_t w = 0; w < proc.writes.size(); ++w) {
        write &= enc.nextValue(proc.writes[w], action.writeValues[w]);
      }
      bdd::Bdd frame = enc.manager().trueBdd();
      for (protocol::VarId v = 0; v < p.vars.size(); ++v) {
        if (!proc.canWrite(v)) frame &= enc.unchanged(v);
      }
      rebuilt |= guard & write & frame & enc.validCur();
    }
    // Extraction projects away nothing for frame-respecting relations.
    EXPECT_TRUE(rebuilt == r.addedPerProcess[j]) << "process " << j;
  }
}

TEST(Extraction, FormatActionsRendersGuardsAndWrites) {
  const protocol::Protocol p = casestudies::tokenRing(4, 3);
  const symbolic::Encoding enc(p);
  const symbolic::SymbolicProtocol sp(enc);
  core::StrongOptions opt;
  opt.schedule = core::rotatedSchedule(4, 1);
  const core::StrongResult r = core::addStrongConvergence(sp, opt);
  ASSERT_TRUE(r.success);
  const auto pa = extraction::extractProcessActions(sp, 1,
                                                    r.addedPerProcess[1]);
  const std::string text = extraction::formatActions(p, pa);
  EXPECT_NE(text.find("P1:"), std::string::npos);
  EXPECT_NE(text.find("x1 :="), std::string::npos);
  EXPECT_NE(text.find("-->"), std::string::npos);

  const auto none = extraction::extractProcessActions(sp, 0,
                                                      r.addedPerProcess[0]);
  EXPECT_NE(extraction::formatActions(p, none).find("(no actions)"),
            std::string::npos);
}

}  // namespace
