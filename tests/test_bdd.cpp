// Unit tests for the BDD substrate: construction, boolean algebra,
// quantification, relational product, renaming, analyses, and garbage
// collection.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <thread>

#include "bdd/bdd.hpp"
#include "util/rng.hpp"

namespace stsyn::bdd {

/// Test-only backdoor (friend of Manager) used to plant adversarial
/// operation-cache entries for the GC sweep regression tests.
struct ManagerTestAccess {
  static void plantCacheEntry(Manager& m, NodeIndex a, NodeIndex b,
                              NodeIndex c, NodeIndex result) {
    Manager::CacheEntry& e = m.cache_.front();
    e.ka = a;  // op nibble 0 (And) | a-operand edge
    e.b = b;
    e.c = c;
    e.result = result;
  }
  static bool frontSlotEvicted(const Manager& m) {
    return m.cache_.front().ka == Manager::kCacheEmpty;
  }
};

}  // namespace stsyn::bdd

namespace {

using stsyn::bdd::Bdd;
using stsyn::bdd::Manager;
using stsyn::bdd::ManagerTestAccess;
using stsyn::bdd::NodeIndex;
using stsyn::bdd::Var;

std::vector<Var> levels(Var n) {
  std::vector<Var> out(n);
  for (Var i = 0; i < n; ++i) out[i] = i;
  return out;
}

TEST(BddBasics, ConstantsAreDistinctAndIdempotent) {
  Manager m(4);
  EXPECT_TRUE(m.trueBdd().isTrue());
  EXPECT_TRUE(m.falseBdd().isFalse());
  EXPECT_FALSE(m.trueBdd() == m.falseBdd());
  EXPECT_TRUE(m.trueBdd() == m.constant(true));
}

TEST(BddBasics, NullHandleBehaviour) {
  Bdd null;
  EXPECT_FALSE(null.valid());
  EXPECT_FALSE(null.isTrue());
  EXPECT_FALSE(null.isFalse());
  EXPECT_EQ(null.nodeCount(), 0u);
  EXPECT_THROW((void)!null, std::invalid_argument);
}

TEST(BddBasics, VarAndNvarAreComplements) {
  Manager m(4);
  for (Var v = 0; v < 4; ++v) {
    EXPECT_TRUE(m.nvar(v) == !m.var(v));
  }
  EXPECT_THROW((void)m.var(4), std::out_of_range);
}

TEST(BddBasics, CanonicityStructuralEqualityIsSemantic) {
  Manager m(4);
  const Bdd a = m.var(0);
  const Bdd b = m.var(1);
  // Two different constructions of the same function share the node.
  EXPECT_TRUE((a | b) == (!((!a) & (!b))));
  EXPECT_TRUE((a ^ b) == ((a & (!b)) | ((!a) & b)));
}

TEST(BddBasics, OperandsFromDifferentManagersRejected) {
  Manager m1(2);
  Manager m2(2);
  EXPECT_THROW((void)(m1.var(0) & m2.var(0)), std::invalid_argument);
}

TEST(BddBasics, ImpliesMatchesDefinition) {
  Manager m(3);
  const Bdd a = m.var(0);
  const Bdd b = m.var(1);
  EXPECT_TRUE((a & b).implies(a));
  EXPECT_FALSE(a.implies(a & b));
  EXPECT_TRUE(m.falseBdd().implies(a));
  EXPECT_TRUE(a.implies(m.trueBdd()));
}

TEST(BddBasics, MinusIsSetDifference) {
  Manager m(2);
  const Bdd a = m.var(0);
  const Bdd b = m.var(1);
  EXPECT_TRUE(a.minus(b) == (a & !b));
  EXPECT_TRUE(a.minus(a).isFalse());
}

TEST(BddQuantify, ExistsRemovesSupport) {
  Manager m(4);
  const Bdd f = (m.var(0) & m.var(1)) | m.var(2);
  const std::vector<Var> q{0};
  const Bdd ex = f.exists(m.cube(q));
  // exists x0: (x0 & x1) | x2  ==  x1 | x2
  EXPECT_TRUE(ex == (m.var(1) | m.var(2)));
  const auto sup = ex.support();
  EXPECT_EQ(sup, (std::vector<Var>{1, 2}));
}

TEST(BddQuantify, ForallIsDualOfExists) {
  Manager m(4);
  const Bdd f = (m.var(0) & m.var(1)) | m.var(2);
  const std::vector<Var> q{0, 1};
  const Bdd cube = m.cube(q);
  EXPECT_TRUE(f.forall(cube) == !((!f).exists(cube)));
}

TEST(BddQuantify, QuantifyingNonSupportIsIdentity) {
  Manager m(4);
  const Bdd f = m.var(1) ^ m.var(2);
  const std::vector<Var> q{0, 3};
  EXPECT_TRUE(f.exists(m.cube(q)) == f);
  EXPECT_TRUE(f.forall(m.cube(q)) == f);
}

TEST(BddQuantify, AndExistsEqualsComposition) {
  Manager m(6);
  const Bdd f = (m.var(0) & m.var(2)) | (m.var(1) & !m.var(3));
  const Bdd g = m.var(2) | m.var(4);
  const std::vector<Var> q{2, 3};
  const Bdd cube = m.cube(q);
  EXPECT_TRUE(f.andExists(g, cube) == (f & g).exists(cube));
}

TEST(BddRename, ShiftWithinSupportOrder) {
  Manager m(6);
  const Bdd f = m.var(0) & !m.var(2);
  std::vector<Var> perm{1, 1, 3, 3, 4, 5};  // 0->1, 2->3 (monotone)
  const Bdd g = f.rename(perm);
  EXPECT_TRUE(g == (m.var(1) & !m.var(3)));
}

TEST(BddRename, WrongArityRejected) {
  Manager m(4);
  std::vector<Var> tooShort{0, 1};
  EXPECT_THROW((void)m.var(0).rename(tooShort), std::invalid_argument);
}

TEST(BddAnalysis, SatCountOverExplicitLevels) {
  Manager m(4);
  const Bdd f = m.var(0) | m.var(1);
  const std::vector<Var> lv2{0, 1};
  EXPECT_DOUBLE_EQ(f.satCount(lv2), 3.0);
  const std::vector<Var> lv3{0, 1, 3};
  EXPECT_DOUBLE_EQ(f.satCount(lv3), 6.0);
  EXPECT_DOUBLE_EQ(m.trueBdd().satCount(lv3), 8.0);
  EXPECT_DOUBLE_EQ(m.falseBdd().satCount(lv3), 0.0);
}

TEST(BddAnalysis, SatCountRejectsUncoveredSupport) {
  Manager m(4);
  const Bdd f = m.var(2);
  const std::vector<Var> lv{0, 1};
  EXPECT_THROW((void)f.satCount(lv), std::invalid_argument);
}

TEST(BddAnalysis, NodeCountOfSharedStructure) {
  Manager m(8);
  // A chain x0&x1&...&x5 has exactly 6 nodes.
  Bdd f = m.trueBdd();
  for (Var v = 0; v < 6; ++v) f &= m.var(v);
  EXPECT_EQ(f.nodeCount(), 6u);
  EXPECT_EQ(m.trueBdd().nodeCount(), 0u);
}

TEST(BddAnalysis, EvalWalksTheGraph) {
  Manager m(3);
  const Bdd f = (m.var(0) & m.var(1)) | m.var(2);
  const std::vector<char> a0{1, 1, 0};
  const std::vector<char> a1{1, 0, 0};
  const std::vector<char> a2{0, 0, 1};
  EXPECT_TRUE(f.eval(a0));
  EXPECT_FALSE(f.eval(a1));
  EXPECT_TRUE(f.eval(a2));
}

TEST(BddAnalysis, OnePathSatisfiesTheFunction) {
  Manager m(5);
  const Bdd f = (m.var(0) ^ m.var(3)) & m.var(4);
  const auto path = f.onePath();
  std::vector<char> assign(5, 0);
  for (Var v = 0; v < 5; ++v) assign[v] = path[v] == 1 ? 1 : 0;
  EXPECT_TRUE(f.eval(assign));
  EXPECT_THROW((void)m.falseBdd().onePath(), std::invalid_argument);
}

TEST(BddAnalysis, ForEachSatEnumeratesExactlyTheModels) {
  Manager m(4);
  const Bdd f = (m.var(0) | m.var(1)) & !m.var(2);
  std::size_t count = 0;
  const auto lv = levels(4);
  f.forEachSat(lv, [&](std::span<const char> bits) {
    std::vector<char> assign(bits.begin(), bits.end());
    EXPECT_TRUE(f.eval(assign));
    ++count;
  });
  EXPECT_DOUBLE_EQ(static_cast<double>(count), f.satCount(lv));
}

TEST(BddGc, CollectionPreservesLiveFunctionsAndFreesDead) {
  Manager m(16);
  Bdd keep = m.var(0);
  for (Var v = 1; v < 16; ++v) keep = (keep & m.var(v)) | m.var(v - 1);
  const std::size_t keepNodes = keep.nodeCount();
  {
    // Build and drop a lot of garbage.
    Bdd junk = m.trueBdd();
    for (Var v = 0; v < 16; ++v) junk ^= m.var(v) & m.var((v + 5) % 16);
  }
  const std::size_t before = m.stats().liveNodes;
  m.collectGarbage();
  EXPECT_LT(m.stats().liveNodes, before);
  EXPECT_GE(m.stats().gcRuns, 1u);
  // The kept function is untouched and still canonical.
  EXPECT_EQ(keep.nodeCount(), keepNodes);
  Bdd again = m.var(0);
  for (Var v = 1; v < 16; ++v) again = (again & m.var(v)) | m.var(v - 1);
  EXPECT_TRUE(again == keep);
}

TEST(BddGc, AggressiveThresholdKeepsResultsCorrect) {
  Manager m(12);
  m.setGcThreshold(64);  // collect almost constantly
  stsyn::util::Rng rng(99);
  Bdd acc = m.falseBdd();
  for (int i = 0; i < 200; ++i) {
    const Var v = static_cast<Var>(rng.below(12));
    const Var w = static_cast<Var>(rng.below(12));
    acc = (acc ^ m.var(v)) | (m.var(w) & !m.var(v));
  }
  // Verify against brute-force evaluation on every assignment.
  const auto lv = levels(12);
  double models = 0;
  for (unsigned bits = 0; bits < (1u << 12); ++bits) {
    std::vector<char> assign(12);
    for (Var v = 0; v < 12; ++v) assign[v] = (bits >> v) & 1;
    if (acc.eval(assign)) models += 1;
  }
  EXPECT_DOUBLE_EQ(acc.satCount(lv), models);
}

TEST(BddDot, WritesParsableDigraph) {
  Manager m(3);
  const Bdd f = m.var(0) & !m.var(2);
  std::ostringstream os;
  m.writeDot(os, f, [](Var v) { return "level" + std::to_string(v); });
  const std::string dot = os.str();
  EXPECT_NE(dot.find("digraph bdd"), std::string::npos);
  EXPECT_NE(dot.find("level0"), std::string::npos);
  EXPECT_NE(dot.find("level2"), std::string::npos);
  EXPECT_EQ(dot.find("level1"), std::string::npos);  // not in support
}

TEST(BddCube, CubeOfUnsortedVarsIsSortedConjunction) {
  Manager m(6);
  const std::vector<Var> vs{4, 1, 3};
  const Bdd c = m.cube(vs);
  EXPECT_TRUE(c == (m.var(1) & m.var(3) & m.var(4)));
}

TEST(BddCube, DuplicateVarsAreDeduplicated) {
  // Regression: a duplicate used to chain two nodes of the same variable,
  // producing a structurally invalid diagram (debug builds asserted).
  Manager m(6);
  const std::vector<Var> dup{3, 1, 3, 3, 1};
  const Bdd c = m.cube(dup);
  EXPECT_TRUE(c == (m.var(1) & m.var(3)));
  EXPECT_EQ(c.nodeCount(), 2u);
  // Quantifying over a duplicated-variable cube behaves like the deduped one.
  const Bdd f = (m.var(1) & m.var(2)) | m.var(3);
  const std::vector<Var> q{1, 1};
  EXPECT_TRUE(f.exists(m.cube(q)) == (m.var(2) | m.var(3)));
}

TEST(BddCube, EqualVarsBuildsBiconditionals) {
  Manager m(4);
  const std::vector<std::pair<Var, Var>> pairs{{0, 1}, {2, 3}};
  const Bdd eq = m.equalVars(pairs);
  const std::vector<char> same{1, 1, 0, 0};
  const std::vector<char> diff{1, 0, 0, 0};
  EXPECT_TRUE(eq.eval(same));
  EXPECT_FALSE(eq.eval(diff));
}

TEST(BddCompose, SubstitutionMatchesDefinition) {
  Manager m(5);
  const Bdd f = (m.var(0) & m.var(2)) | m.var(4);
  const Bdd g = m.var(1) ^ m.var(3);
  const Bdd composed = f.compose(2, g);
  // Direct construction of f[x2 := g].
  const Bdd expected = (m.var(0) & g) | m.var(4);
  EXPECT_TRUE(composed == expected);
  // Composing a variable not in the support is the identity.
  EXPECT_TRUE(f.compose(1, g) == f);
  // Substituting constants is cofactoring.
  EXPECT_TRUE(f.compose(2, m.trueBdd()) == (m.var(0) | m.var(4)));
  EXPECT_TRUE(f.compose(0, m.falseBdd()) == m.var(4));
  EXPECT_THROW((void)f.compose(99, g), std::out_of_range);
}

TEST(BddCompose, SubstituteUpwardDependentFunction) {
  // g depends on a variable ABOVE the substituted one — the case plain
  // mk-based recursion cannot handle.
  Manager m(4);
  const Bdd f = m.var(2) & m.var(3);
  const Bdd g = m.var(0);
  EXPECT_TRUE(f.compose(2, g) == (m.var(0) & m.var(3)));
}

TEST(BddSerialize, RoundTripsExactly) {
  Manager m(8);
  stsyn::util::Rng rng(5);
  Bdd f = m.falseBdd();
  for (int i = 0; i < 60; ++i) {
    const Var a = static_cast<Var>(rng.below(8));
    const Var b = static_cast<Var>(rng.below(8));
    f = (f ^ m.var(a)) | (m.var(b) & !m.var(a));
  }
  std::stringstream buffer;
  saveBdd(buffer, f);
  const Bdd back = loadBdd(buffer, m);
  EXPECT_TRUE(back == f);
}

TEST(BddSerialize, LoadsIntoAFreshManager) {
  Manager m1(6);
  const Bdd f = (m1.var(0) & m1.var(3)) ^ m1.var(5);
  std::stringstream buffer;
  saveBdd(buffer, f);

  Manager m2(6);
  const Bdd g = loadBdd(buffer, m2);
  // Same truth table in the new manager.
  for (unsigned bits = 0; bits < 64; ++bits) {
    std::vector<char> assign(6);
    for (Var v = 0; v < 6; ++v) assign[v] = (bits >> v) & 1;
    EXPECT_EQ(g.eval(assign), f.eval(assign)) << bits;
  }
}

TEST(BddSerialize, ConstantsAndErrors) {
  Manager m(3);
  {
    std::stringstream buffer;
    saveBdd(buffer, m.trueBdd());
    EXPECT_TRUE(loadBdd(buffer, m).isTrue());
  }
  {
    std::stringstream bad("not-a-bdd 1 2 3");
    EXPECT_THROW((void)loadBdd(bad, m), std::runtime_error);
  }
  {
    std::stringstream dangling("bdd 3 1 2\n2 0 7 1\n");
    EXPECT_THROW((void)loadBdd(dangling, m), std::runtime_error);
  }
  {
    Manager tiny(1);
    std::stringstream toBig("bdd 3 0 1\n");
    EXPECT_THROW((void)loadBdd(toBig, tiny), std::runtime_error);
  }
}

TEST(BddSerialize, ComplementedFunctionsRoundTripAndShareTheTable) {
  // With complement edges f and !f are the same node table under opposite
  // root signs: the v2 writer must emit identical rows for both, and the
  // loader must restore the relationship exactly.
  Manager m(6);
  const Bdd f = (m.var(0) & m.var(3)) ^ (!m.var(1) | m.var(5));
  const Bdd nf = !f;

  std::stringstream bufF;
  std::stringstream bufNf;
  saveBdd(bufF, f);
  saveBdd(bufNf, nf);
  const std::string textF = bufF.str();
  const std::string textNf = bufNf.str();
  // Both are v2 documents and differ only in the header's root ref (the
  // node rows — everything after the first line — are byte-identical).
  EXPECT_EQ(textF.substr(0, 4), "bdd2");
  EXPECT_EQ(textF.substr(textF.find('\n')), textNf.substr(textNf.find('\n')));

  Manager m2(6);
  std::stringstream inF(textF);
  std::stringstream inNf(textNf);
  const Bdd g = loadBdd(inF, m2);
  const Bdd ng = loadBdd(inNf, m2);
  EXPECT_EQ(ng, !g);
  for (unsigned bits = 0; bits < 64; ++bits) {
    std::vector<char> assign(6);
    for (Var v = 0; v < 6; ++v) assign[v] = (bits >> v) & 1;
    EXPECT_EQ(g.eval(assign), f.eval(assign)) << bits;
    EXPECT_EQ(ng.eval(assign), nf.eval(assign)) << bits;
  }
  // The constant FALSE is a complemented edge into the terminal: ref 1,
  // zero rows.
  std::stringstream bufFalse;
  saveBdd(bufFalse, m.falseBdd());
  EXPECT_EQ(bufFalse.str(), "bdd2 6 0 1\n");
  std::stringstream inFalse(bufFalse.str());
  EXPECT_TRUE(loadBdd(inFalse, m2).isFalse());
}

TEST(BddSerialize, LoadsLegacyV1Documents) {
  // A v1 document written before the complement-edge representation:
  // untagged refs, 0 = false, 1 = true, internal ids from 2 bottom-up.
  // This exact text is what the old writer produced for x0 & x1.
  Manager m(2);
  std::stringstream v1("bdd 2 2 3\n2 1 0 1\n3 0 0 2\n");
  const Bdd f = loadBdd(v1, m);
  EXPECT_EQ(f, m.var(0) & m.var(1));

  // And a v1 document whose root is the FALSE ref still means false.
  std::stringstream v1False("bdd 2 0 0\n");
  EXPECT_TRUE(loadBdd(v1False, m).isFalse());
  std::stringstream v1True("bdd 2 0 1\n");
  EXPECT_TRUE(loadBdd(v1True, m).isTrue());
}

TEST(BddGc, CacheSweepEvictsEntriesWithOutOfRangeResults) {
  // Regression: the sweep bounds-checked the operand slots a/b/c against
  // the mark table but indexed marks_[e.result] unchecked, an
  // out-of-bounds read for any entry whose result slot carries a stale or
  // non-node payload. Plant exactly that entry and collect.
  Manager m(4);
  const Bdd keep = m.var(0) & m.var(1);
  ManagerTestAccess::plantCacheEntry(m, /*a=*/1, /*b=*/1, /*c=*/1,
                                     /*result=*/NodeIndex{1} << 30);
  m.collectGarbage();
  EXPECT_TRUE(ManagerTestAccess::frontSlotEvicted(m));
  // The manager still computes correctly after the sweep.
  EXPECT_EQ(keep & m.var(0), keep);
}

TEST(BddGc, CacheSweepEvictsEntriesWhoseResultDied) {
  Manager m(4);
  {
    const Bdd dead = m.var(2) ^ m.var(3);
    ManagerTestAccess::plantCacheEntry(m, /*a=*/1, /*b=*/1, /*c=*/1,
                                       dead.raw());
  }  // handle dropped: the planted result node is now garbage
  m.collectGarbage();
  EXPECT_TRUE(ManagerTestAccess::frontSlotEvicted(m));
}

TEST(BddThreads, BindToCurrentThreadAdoptsAManagerBuiltElsewhere) {
  // The sanctioned handoff: build on one thread, join, re-pin, then use
  // freely — exactly what the schedule portfolio does per instance.
  std::unique_ptr<Manager> m;
  Bdd f;
  std::thread builder([&] {
    m = std::make_unique<Manager>(3);
    f = m->var(1) & m->var(2);
  });
  builder.join();
  m->bindToCurrentThread();
  EXPECT_EQ(f, m->var(1) & m->var(2));
  const Bdd g = f | m->var(0);
  EXPECT_FALSE(g.isFalse());
}

#ifndef NDEBUG
TEST(BddThreadsDeathTest, OffThreadHandleCopyAssertsInDebugBuilds) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // Copying a handle bumps the owning manager's ref counts — the widest
  // cross-thread mutation surface, and the one the confinement assert
  // must catch.
  EXPECT_DEATH(
      {
        Manager m(2);
        const Bdd f = m.var(0);
        std::thread t([&] {
          const Bdd copy = f;  // ref() off the owning thread
          (void)copy;
        });
        t.join();
      },
      "thread-confined");
}
#endif

}  // namespace
