// Tests for the .stsyn language: lexer, parser, semantic errors, and the
// printer round-trip.
#include <gtest/gtest.h>

#include "explicitstate/semantics.hpp"
#include "explicitstate/verify.hpp"
#include "lang/parser.hpp"
#include "lang/printer.hpp"
#include "util/rng.hpp"

namespace {

using namespace stsyn;
using lang::ParseError;
using lang::parseProtocol;
using lang::Token;
using lang::TokenKind;
using lang::tokenize;

// ---------------------------------------------------------------------------
// Lexer.
// ---------------------------------------------------------------------------

TEST(Lexer, TokenizesOperatorsGreedily) {
  const auto tokens = tokenize("<= < <=> => == := .. -> != >=");
  std::vector<TokenKind> kinds;
  for (const Token& t : tokens) kinds.push_back(t.kind);
  EXPECT_EQ(kinds, (std::vector<TokenKind>{
                       TokenKind::LessEq, TokenKind::Less, TokenKind::Iff,
                       TokenKind::Implies, TokenKind::EqEq, TokenKind::Assign,
                       TokenKind::DotDot, TokenKind::Arrow, TokenKind::NotEq,
                       TokenKind::GreaterEq, TokenKind::EndOfInput}));
}

TEST(Lexer, KeywordsVsIdentifiers) {
  const auto tokens = tokenize("protocol proto var variable mod modx");
  EXPECT_EQ(tokens[0].kind, TokenKind::KwProtocol);
  EXPECT_EQ(tokens[1].kind, TokenKind::Identifier);
  EXPECT_EQ(tokens[2].kind, TokenKind::KwVar);
  EXPECT_EQ(tokens[3].kind, TokenKind::Identifier);
  EXPECT_EQ(tokens[4].kind, TokenKind::KwMod);
  EXPECT_EQ(tokens[5].kind, TokenKind::Identifier);
}

TEST(Lexer, CommentsAndPositions) {
  const auto tokens = tokenize("x # a comment\n  // another\n  y");
  ASSERT_EQ(tokens.size(), 3u);  // x, y, EOF
  EXPECT_EQ(tokens[0].text, "x");
  EXPECT_EQ(tokens[0].line, 1);
  EXPECT_EQ(tokens[1].text, "y");
  EXPECT_EQ(tokens[1].line, 3);
  EXPECT_EQ(tokens[1].column, 3);
}

TEST(Lexer, RejectsStrayCharacters) {
  EXPECT_THROW((void)tokenize("a @ b"), ParseError);
  EXPECT_THROW((void)tokenize("a | b"), ParseError);  // single pipe
}

/// Catches a ParseError and returns its (line, column).
template <typename Fn>
std::pair<int, int> errorPosition(Fn&& fn) {
  try {
    fn();
  } catch (const ParseError& e) {
    return {e.line, e.column};
  }
  ADD_FAILURE() << "expected ParseError";
  return {-1, -1};
}

TEST(Lexer, StrayCharacterPositionIsExact) {
  EXPECT_EQ(errorPosition([] { (void)tokenize("a @ b"); }),
            (std::pair<int, int>{1, 3}));
  // Tabs count as one column; the lexer reports character positions.
  EXPECT_EQ(errorPosition([] { (void)tokenize("ab\ncd $"); }),
            (std::pair<int, int>{2, 4}));
}

TEST(Lexer, PositionsSurviveCommentsAndBlankLines) {
  // '#' and '//' comments and blank lines advance the line counter
  // without emitting tokens; the error lands after them at the exact spot.
  EXPECT_EQ(errorPosition([] {
              (void)tokenize("# leading comment\n\n// another\n  x ? y");
            }),
            (std::pair<int, int>{4, 5}));
  // A comment on the same line as code: error column is pre-comment.
  EXPECT_EQ(errorPosition([] { (void)tokenize("x ?  # trailing\n"); }),
            (std::pair<int, int>{1, 3}));
}

TEST(Parser, MissingSemicolonPositionIsTheNextToken) {
  // The missing ';' after the var declaration is discovered at 'process'.
  EXPECT_EQ(errorPosition([] {
              (void)parseProtocol("protocol p;\nvar x : 0..1\nprocess");
            }),
            (std::pair<int, int>{3, 1}));
}

TEST(Parser, UnterminatedProcessBlockPointsAtEndOfInput) {
  EXPECT_EQ(errorPosition([] {
              (void)parseProtocol(
                  "protocol p;\nvar x : 0..1;\nprocess P {\n  reads x;\n");
            }),
            (std::pair<int, int>{5, 1}));
}

TEST(Parser, UndeclaredVariablePointsAtTheUse) {
  EXPECT_EQ(errorPosition([] {
              (void)parseProtocol(
                  "protocol p;\nvar x : 0..1;\ninvariant : x == ghost;\n");
            }),
            (std::pair<int, int>{3, 18}));
}

TEST(Parser, BadDomainBoundsPointAfterComments) {
  // '#' comment lines before the offending declaration shift the line; the
  // error points at the offending bound, not at the following token.
  EXPECT_EQ(errorPosition([] {
              (void)parseProtocol(
                  "protocol p;\n# domains must start at 0\nvar x : 1..2;\n");
            }),
            (std::pair<int, int>{3, 9}));
}

TEST(Parser, MissingExpressionPositionIsExact) {
  EXPECT_EQ(errorPosition([] {
              (void)parseProtocol("protocol p;\nvar x : 0..1;\ninvariant : ;");
            }),
            (std::pair<int, int>{3, 13}));
}

// ---------------------------------------------------------------------------
// Parser.
// ---------------------------------------------------------------------------

constexpr const char* kTokenRing = R"(
protocol tiny_ring;

var x0 : 0..2;
var x1 : 0..2;

process P0 {
  reads x0, x1;
  writes x0;
  action bump : x0 == x1 -> x0 := (x1 + 1) mod 3;
}

process P1 {
  reads x0, x1;
  writes x1;
  action chase : x1 != x0 -> x1 := x0;
}

invariant : x0 == x1 || (x1 + 1) mod 3 == x0;
)";

TEST(Parser, ParsesAWholeProtocol) {
  const protocol::Protocol p = parseProtocol(kTokenRing);
  EXPECT_EQ(p.name, "tiny_ring");
  ASSERT_EQ(p.varCount(), 2u);
  EXPECT_EQ(p.vars[0].domain, 3);
  ASSERT_EQ(p.processCount(), 2u);
  EXPECT_EQ(p.processes[0].actions.size(), 1u);
  EXPECT_EQ(p.processes[0].actions[0].label, "bump");
  EXPECT_EQ(p.processes[0].writes, (std::vector<protocol::VarId>{0}));

  // The parsed protocol is semantically usable.
  explicitstate::StateSpace space(p);
  EXPECT_EQ(space.size(), 9u);
  EXPECT_EQ(space.invariantSize(), 6u);
}

TEST(Parser, ActionLabelIsOptional) {
  const protocol::Protocol p = parseProtocol(R"(
protocol demo;
var x : 0..1;
process P { reads x; writes x; action : x == 0 -> x := 1; }
invariant : true;
)");
  EXPECT_EQ(p.processes[0].actions[0].label, "a0");
}

TEST(Parser, ParsesLocalPredicates) {
  const protocol::Protocol p = parseProtocol(R"(
protocol demo;
var x : 0..1;
var y : 0..1;
process P { reads x, y; writes x; local : x != y; }
process Q { reads x, y; writes y; local : x != y; }
invariant : x != y;
)");
  ASSERT_EQ(p.localPredicates.size(), 2u);
  const std::vector<int> good{0, 1};
  const std::vector<int> bad{1, 1};
  EXPECT_TRUE(protocol::evalBool(*p.localPredicates[0], good));
  EXPECT_FALSE(protocol::evalBool(*p.localPredicates[1], bad));
}

TEST(Parser, OperatorPrecedence) {
  const protocol::Protocol p = parseProtocol(R"(
protocol demo;
var x : 0..3;
process P { reads x; writes x; }
invariant : x + 1 * 2 == 2 || x == 3 && x != 0;
)");
  // Must parse as ((x + (1*2)) == 2) || ((x == 3) && (x != 0)).
  const std::vector<int> zero{0};
  const std::vector<int> three{3};
  const std::vector<int> one{1};
  EXPECT_TRUE(protocol::evalBool(*p.invariant, zero));
  EXPECT_TRUE(protocol::evalBool(*p.invariant, three));
  EXPECT_FALSE(protocol::evalBool(*p.invariant, one));
}

TEST(Parser, ImpliesIsRightAssociative) {
  const protocol::Protocol p = parseProtocol(R"(
protocol demo;
var x : 0..1;
process P { reads x; writes x; }
invariant : x == 0 => x == 1 => x == 1;
)");
  // a => (b => c): holds everywhere for this instance.
  const std::vector<int> zero{0};
  const std::vector<int> one{1};
  EXPECT_TRUE(protocol::evalBool(*p.invariant, zero));
  EXPECT_TRUE(protocol::evalBool(*p.invariant, one));
}

TEST(Parser, SemanticErrors) {
  EXPECT_THROW((void)parseProtocol("protocol p; invariant : y == 0;"),
               ParseError);  // undeclared variable
  EXPECT_THROW((void)parseProtocol("protocol p; var x : 1..2;"),
               ParseError);  // domain must start at 0
  EXPECT_THROW((void)parseProtocol(R"(
protocol p;
var x : 0..1;
process P { reads x; writes x; }
)"),
               ParseError);  // missing invariant
  // Read/write violations surface from protocol::validate.
  EXPECT_THROW((void)parseProtocol(R"(
protocol p;
var x : 0..1;
var y : 0..1;
process P { reads x; writes x; action : y == 0 -> x := 1; }
invariant : true;
)"),
               std::invalid_argument);
}

TEST(Parser, SyntaxErrorsCarryPositions) {
  try {
    (void)parseProtocol("protocol p;\nvar x : 0..1\nprocess");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line, 3);  // missing ';' discovered at 'process'
  }
}

// ---------------------------------------------------------------------------
// Printer round-trip.
// ---------------------------------------------------------------------------

TEST(Printer, RoundTripPreservesSemantics) {
  const protocol::Protocol p1 = parseProtocol(kTokenRing);
  const std::string printed = lang::printProtocol(p1);
  const protocol::Protocol p2 = parseProtocol(printed);

  // Same shape...
  ASSERT_EQ(p1.varCount(), p2.varCount());
  ASSERT_EQ(p1.processCount(), p2.processCount());
  // ...and identical explicit semantics: same invariant set, same edges.
  explicitstate::StateSpace s1(p1);
  explicitstate::StateSpace s2(p2);
  const auto t1 = explicitstate::buildTransitions(s1);
  const auto t2 = explicitstate::buildTransitions(s2);
  ASSERT_EQ(s1.size(), s2.size());
  for (explicitstate::StateId s = 0; s < s1.size(); ++s) {
    EXPECT_EQ(s1.inInvariant(s), s2.inInvariant(s)) << "state " << s;
    EXPECT_EQ(t1.succ[s], t2.succ[s]) << "state " << s;
  }
}

TEST(Printer, RoundTripWithLocalPredicates) {
  const char* src = R"(
protocol demo;
var x : 0..2;
var y : 0..2;
process P { reads x, y; writes x; local : x != y; action : x == y -> x := (y + 1) mod 3; }
process Q { reads x, y; writes y; local : y != x; }
invariant : x != y;
)";
  const protocol::Protocol p1 = parseProtocol(src);
  const protocol::Protocol p2 = parseProtocol(lang::printProtocol(p1));
  ASSERT_EQ(p2.localPredicates.size(), 2u);
  explicitstate::StateSpace s1(p1);
  explicitstate::StateSpace s2(p2);
  EXPECT_EQ(s1.invariantSize(), s2.invariantSize());
}

class ParserFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParserFuzz, NeverCrashesOnGarbage) {
  // Random byte soup and random token salads must produce ParseError (or,
  // rarely, a valid protocol) — never a crash or a non-ParseError escape
  // from the lexer/parser layer. (Semantic errors surface as
  // std::invalid_argument from validate(); also acceptable.)
  util::Rng rng(GetParam() * 2654435761u + 17);
  const std::string alphabet =
      "abxyz01239 \t\n;:,{}()<>=!&|+-*%._#/"
      "protocol var process reads writes action local invariant true false "
      "mod";
  for (int doc = 0; doc < 40; ++doc) {
    std::string text;
    const std::size_t len = rng.below(200);
    for (std::size_t i = 0; i < len; ++i) {
      text += alphabet[rng.below(alphabet.size())];
    }
    try {
      (void)lang::parseProtocol(text);
    } catch (const lang::ParseError&) {
    } catch (const std::invalid_argument&) {
    }
  }
}

TEST_P(ParserFuzz, MutatedValidProtocolsFailCleanly) {
  // Start from a valid source and flip random characters: every mutant
  // either parses or throws a typed error with a position.
  util::Rng rng(GetParam() * 40503 + 3);
  std::string base = R"(
protocol demo;
var x : 0..2;
var y : 0..2;
process P { reads x, y; writes x; action : x == y -> x := (y + 1) mod 3; }
invariant : x != y;
)";
  for (int mutant = 0; mutant < 60; ++mutant) {
    std::string text = base;
    const std::size_t edits = 1 + rng.below(4);
    for (std::size_t e = 0; e < edits; ++e) {
      text[rng.below(text.size())] =
          static_cast<char>(32 + rng.below(95));
    }
    try {
      (void)lang::parseProtocol(text);
    } catch (const lang::ParseError& err) {
      EXPECT_GE(err.line, 1);
      EXPECT_GE(err.column, 1);
    } catch (const std::invalid_argument&) {
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz,
                         ::testing::Range<std::uint64_t>(0, 10));

}  // namespace
