// stsyn — the command-line frontend.
//
// All real work lives in src/cli (argument parsing, the run driver, the
// stats document) and src/serve (the daemon); this file only owns what a
// terminal session needs that a daemon does not: reading protocol files,
// writing the --output/--stats-json/--trace artifacts, and process exit
// codes.
//
//   stsyn <file.stsyn> [options]   synthesize / --weak / --verify
//   stsyn lint <file.stsyn> [...]  static analysis (text or SARIF)
//   stsyn serve [options]          synthesis-as-a-service daemon
//
// Run with no arguments for the full option list.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "cli/driver.hpp"
#include "cli/options.hpp"
#include "lang/parser.hpp"
#include "lang/printer.hpp"
#include "obs/trace.hpp"
#include "serve/server.hpp"

namespace {

/// Writes the stats document and Chrome trace on every exit path once a
/// run was attempted, like the old in-main report destructor did: a
/// failed or timed-out run still produces its artifacts.
struct ArtifactWriter {
  const stsyn::cli::Options& opt;
  const stsyn::cli::Report& report;

  ~ArtifactWriter() {
    if (!opt.statsPath.empty()) writeStats();
    if (!opt.tracePath.empty()) writeTrace();
  }

  void writeStats() const {
    std::ofstream out(opt.statsPath);
    if (!out) {
      std::fprintf(stderr, "stsyn: cannot write %s\n", opt.statsPath.c_str());
      return;
    }
    out << report.renderStatsJson() << '\n';
    if (out.good()) {
      std::printf("wrote stats to %s\n", opt.statsPath.c_str());
    } else {
      std::fprintf(stderr, "stsyn: error writing %s\n", opt.statsPath.c_str());
    }
  }

  void writeTrace() const {
    std::ofstream out(opt.tracePath);
    if (!out) {
      std::fprintf(stderr, "stsyn: cannot write %s\n", opt.tracePath.c_str());
      return;
    }
    stsyn::obs::Tracer::global().writeChromeTrace(out);
    if (out.good()) {
      std::printf("wrote trace to %s (%zu events)\n", opt.tracePath.c_str(),
                  stsyn::obs::Tracer::global().eventCount());
    } else {
      std::fprintf(stderr, "stsyn: error writing %s\n", opt.tracePath.c_str());
    }
  }
};

int runLintFile(const stsyn::cli::Options& opt) {
  std::ifstream in(opt.path);
  if (!in) {
    std::fprintf(stderr, "stsyn: cannot open protocol file %s\n",
                 opt.path.c_str());
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return stsyn::cli::runLintSource(buf.str(), opt.path, opt, std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace stsyn;

  cli::Options opt;
  const int parseStatus = cli::parseArgs(argc, argv, opt, std::cerr);
  if (parseStatus >= 0) return parseStatus;

  if (opt.mode == cli::Mode::Lint) return runLintFile(opt);
  if (opt.mode == cli::Mode::Serve) {
    return serve::runServe(opt, std::cout, std::cerr);
  }

  if (!opt.tracePath.empty()) obs::Tracer::global().enable();

  cli::Report report;
  const ArtifactWriter artifacts{opt, report};

  protocol::Protocol p;
  try {
    p = lang::parseProtocolFile(opt.path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "stsyn: %s\n", e.what());
    return 2;
  }
  if (opt.print) std::printf("%s\n", lang::printProtocol(p).c_str());

  const cli::RunOutcome outcome =
      cli::runProtocol(p, opt, report, std::cout, std::cerr);

  if (!opt.outputPath.empty() && !outcome.program.empty()) {
    std::ofstream out(opt.outputPath);
    if (!out) {
      std::fprintf(stderr, "stsyn: cannot write %s\n", opt.outputPath.c_str());
      return 2;
    }
    out << outcome.program;
    std::printf("wrote stabilizing protocol to %s\n", opt.outputPath.c_str());
  }
  return outcome.exitCode;
}
