// The stsyn command-line tool: the STSyn workflow on textual protocol
// descriptions.
//
//   stsyn <protocol.stsyn> [options]
//   stsyn lint <protocol.stsyn> [--werror] [--no-symbolic] [--format=sarif]
//
//   lint / --lint        run the protocol linter (docs/lint_rules.md) and
//                        exit without synthesizing; exit 0 when clean,
//                        1 when diagnostics fail the run, 2 on usage errors
//   --werror             lint: treat warnings as errors
//   --no-symbolic        lint: skip the BDD-backed semantic rules
//   --format=sarif       lint: emit SARIF 2.1.0 JSON instead of text
//   --weak               add weak convergence (Theorem IV.1) instead of
//                        strong
//   --verify             verify the input as-is (closure, deadlocks,
//                        cycles, convergence) and print counterexamples;
//                        no synthesis
//   --portfolio N        run N rotated schedules in parallel (paper Fig. 1)
//                        and keep the first success
//   --image-policy P     image computation policy: monolithic, perprocess,
//                        auto (default; may also come from
//                        $STSYN_IMAGE_POLICY), or both — `both` needs
//                        --portfolio and races the two policies as a
//                        second portfolio axis
//   --image-workers N    worker threads for partitioned image products
//                        (default 1, or $STSYN_IMAGE_WORKERS; 0 = hardware
//                        concurrency; results are bit-identical for every
//                        worker count)
//   --var-order O        BDD variable-order seed: declared (default; may
//                        also come from $STSYN_VAR_ORDER) or static
//                        (reverse Cuthill–McKee over the communication
//                        graph); dynamic reordering still applies on top
//   --orbit-prune        portfolio: run one schedule per process-symmetry
//                        orbit signature up front, deferring the rest to
//                        a fallback phase that only runs if every
//                        representative failed
//   --schedule P2,P0,P1  recovery schedule (default: identity)
//   --max-pass N         stop after pass N (1..3)
//   --no-greedy          disable the greedy cycle-resolution pass
//   --explain            on failure, print a per-deadlock diagnosis
//   --output <file>      write the synthesized stabilizing protocol as
//                        .stsyn text (original actions + recovery actions)
//   --stats-json <file>  write a machine-readable JSON document with the
//                        run outcome and SynthesisStats (schema in
//                        docs/observability.md)
//   --trace <file>       record trace spans and write Chrome trace_event
//                        JSON (load in Perfetto / chrome://tracing)
//   --print              echo the parsed protocol back as .stsyn text
//   --quiet              suppress the extracted actions
//
// Exit status: 0 synthesis succeeded (verified), 1 synthesis failed,
// 2 usage/parse error.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.hpp"
#include "obs/trace.hpp"
#include "stsyn.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: stsyn <protocol.stsyn> [--weak] [--schedule P1,P0,...]"
               " [--max-pass N] [--no-greedy] [--image-policy"
               " monolithic|perprocess|auto|both] [--image-workers N]"
               " [--var-order declared|static] [--orbit-prune]"
               " [--print] [--quiet]"
               " [--stats-json FILE] [--trace FILE]\n"
               "       stsyn lint <protocol.stsyn> [--werror] [--no-symbolic]"
               " [--format=sarif|text]\n");
  return 2;
}

/// One portfolio instance's outcome, copied out for the stats document.
struct PortfolioRow {
  std::string schedule;
  std::string imagePolicy;
  bool ran = false;
  bool success = false;
  bool pruned = false;
  int pass = 0;
  double wallSeconds = 0.0;
};

/// Collects the run's outcome and writes the --stats-json / --trace files
/// on destruction, so every exit path of main emits them.
struct RunReport {
  std::string statsPath;
  std::string tracePath;

  std::string protoName;
  bool haveProtocol = false;
  double processes = 0, states = 0, legitimate = 0;

  const char* mode = "strong";
  bool success = false;
  bool verified = false;
  std::string failure;
  stsyn::core::SynthesisStats stats;
  bool haveStats = false;

  bool havePortfolio = false;
  std::size_t portfolioWinner = SIZE_MAX;
  double portfolioWallSeconds = 0.0;
  bool portfolioOrbitPrune = false;
  std::size_t portfolioSymmetryOrbits = 0;
  std::size_t portfolioSchedulesPruned = 0;
  std::vector<PortfolioRow> portfolioRows;

  ~RunReport() {
    if (!statsPath.empty()) writeStats();
    if (!tracePath.empty()) writeTrace();
  }

  void writeStats() const {
    namespace obs = stsyn::obs;
    std::ofstream out(statsPath);
    if (!out) {
      std::fprintf(stderr, "stsyn: cannot write %s\n", statsPath.c_str());
      return;
    }
    obs::JsonWriter w(out);
    w.beginObject();
    w.field("schema_version", stsyn::core::kStatsJsonSchemaVersion);
    w.field("tool", "stsyn");
    if (haveProtocol) {
      w.key("protocol");
      w.beginObject();
      w.field("name", protoName);
      w.field("processes", processes);
      w.field("states", states);
      w.field("legitimate_states", legitimate);
      w.endObject();
    }
    w.field("mode", mode);
    w.field("success", success);
    w.field("verified", verified);
    if (!failure.empty()) w.field("failure", failure);
    if (haveStats) {
      w.key("stats");
      stats.writeJson(w);
    }
    if (havePortfolio) {
      w.key("portfolio");
      w.beginObject();
      w.field("winner", portfolioWinner == SIZE_MAX
                            ? static_cast<std::int64_t>(-1)
                            : static_cast<std::int64_t>(portfolioWinner));
      w.field("wall_seconds", portfolioWallSeconds);
      std::uint64_t ran = 0;
      for (const PortfolioRow& row : portfolioRows) ran += row.ran ? 1 : 0;
      w.field("instances_run", ran);
      if (portfolioOrbitPrune) {
        w.field("symmetry_orbits",
                static_cast<std::uint64_t>(portfolioSymmetryOrbits));
        w.field("schedules_pruned",
                static_cast<std::uint64_t>(portfolioSchedulesPruned));
      }
      w.key("instances");
      w.beginArray();
      for (const PortfolioRow& row : portfolioRows) {
        w.beginObject();
        w.field("schedule", row.schedule);
        w.field("image_policy", row.imagePolicy);
        w.field("ran", row.ran);
        w.field("success", row.success);
        if (portfolioOrbitPrune) w.field("pruned", row.pruned);
        w.field("pass", row.pass);
        w.field("wall_seconds", row.wallSeconds);
        w.endObject();
      }
      w.endArray();
      w.endObject();
    }
    w.endObject();
    out << '\n';
    if (out.good()) {
      std::printf("wrote stats to %s\n", statsPath.c_str());
    } else {
      std::fprintf(stderr, "stsyn: error writing %s\n", statsPath.c_str());
    }
  }

  void writeTrace() const {
    std::ofstream out(tracePath);
    if (!out) {
      std::fprintf(stderr, "stsyn: cannot write %s\n", tracePath.c_str());
      return;
    }
    stsyn::obs::Tracer::global().writeChromeTrace(out);
    if (out.good()) {
      std::printf("wrote trace to %s (%zu events)\n", tracePath.c_str(),
                  stsyn::obs::Tracer::global().eventCount());
    } else {
      std::fprintf(stderr, "stsyn: error writing %s\n", tracePath.c_str());
    }
  }
};

/// The `stsyn lint` subcommand: parse leniently, run both lint tiers, and
/// render diagnostics. Exit 0 clean, 1 when the run fails, 2 on I/O errors.
int runLint(const char* path, bool werror, const std::string& format,
            const stsyn::analysis::LintOptions& options) {
  using namespace stsyn;
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "stsyn: cannot open protocol file %s\n", path);
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();

  analysis::Diagnostics diags;
  analysis::lintSource(buf.str(), diags, options);
  if (format == "sarif") {
    std::printf("%s", analysis::formatSarif(diags, path).c_str());
  } else {
    std::printf("%s", analysis::formatText(diags, path).c_str());
  }
  return diags.failed(werror) ? 1 : 0;
}

/// Parses "P2,P0,P1" against the protocol's process names.
bool parseSchedule(const std::string& arg, const stsyn::protocol::Protocol& p,
                   stsyn::core::Schedule& out) {
  out.clear();
  std::size_t pos = 0;
  while (pos <= arg.size()) {
    const std::size_t comma = arg.find(',', pos);
    const std::string name =
        arg.substr(pos, comma == std::string::npos ? comma : comma - pos);
    bool found = false;
    for (std::size_t j = 0; j < p.processes.size(); ++j) {
      if (p.processes[j].name == name) {
        out.push_back(j);
        found = true;
        break;
      }
    }
    if (!found) {
      std::fprintf(stderr, "stsyn: unknown process '%s' in schedule\n",
                   name.c_str());
      return false;
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return stsyn::core::isValidSchedule(out, p.processes.size());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace stsyn;
  if (argc < 2) return usage();

  const char* path = nullptr;
  bool weak = false;
  bool verifyOnly = false;
  bool lint = false;
  bool werror = false;
  unsigned portfolio = 0;
  bool print = false;
  bool quiet = false;
  bool explain = false;
  bool orbitPrune = false;
  std::string scheduleArg;
  std::string imagePolicyArg;
  std::string varOrderArg;
  std::string outputPath;
  std::string lintFormat = "text";
  RunReport report;
  core::StrongOptions options;
  analysis::LintOptions lintOptions;

  int argStart = 1;
  if (!std::strcmp(argv[1], "lint")) {
    lint = true;
    argStart = 2;
  }
  for (int i = argStart; i < argc; ++i) {
    const char* a = argv[i];
    if (!std::strcmp(a, "--weak")) {
      weak = true;
    } else if (!std::strcmp(a, "--verify")) {
      verifyOnly = true;
    } else if (!std::strcmp(a, "--lint")) {
      lint = true;
    } else if (!std::strcmp(a, "--werror")) {
      werror = true;
    } else if (!std::strcmp(a, "--no-symbolic")) {
      lintOptions.symbolic = false;
    } else if (!std::strncmp(a, "--format=", 9)) {
      lintFormat = a + 9;
      if (lintFormat != "text" && lintFormat != "sarif") return usage();
    } else if (!std::strcmp(a, "--portfolio") && i + 1 < argc) {
      portfolio = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (!std::strcmp(a, "--print")) {
      print = true;
    } else if (!std::strcmp(a, "--quiet")) {
      quiet = true;
    } else if (!std::strcmp(a, "--no-greedy")) {
      options.greedyCycleResolution = false;
    } else if (!std::strcmp(a, "--explain")) {
      explain = true;
    } else if (!std::strcmp(a, "--schedule") && i + 1 < argc) {
      scheduleArg = argv[++i];
    } else if (!std::strcmp(a, "--image-policy") && i + 1 < argc) {
      imagePolicyArg = argv[++i];
    } else if (!std::strcmp(a, "--var-order") && i + 1 < argc) {
      varOrderArg = argv[++i];
    } else if (!std::strcmp(a, "--orbit-prune")) {
      orbitPrune = true;
    } else if (!std::strcmp(a, "--image-workers") && i + 1 < argc) {
      const int n = std::atoi(argv[++i]);
      if (n < 0) return usage();
      // 0 = hardware concurrency, mirroring $STSYN_IMAGE_WORKERS.
      options.imageWorkers =
          n == 0 ? std::max(1u, std::thread::hardware_concurrency())
                 : static_cast<std::size_t>(n);
    } else if (!std::strcmp(a, "--output") && i + 1 < argc) {
      outputPath = argv[++i];
    } else if (!std::strcmp(a, "--stats-json") && i + 1 < argc) {
      report.statsPath = argv[++i];
    } else if (!std::strcmp(a, "--trace") && i + 1 < argc) {
      report.tracePath = argv[++i];
    } else if (!std::strcmp(a, "--max-pass") && i + 1 < argc) {
      options.maxPass = std::atoi(argv[++i]);
    } else if (a[0] == '-') {
      return usage();
    } else if (path == nullptr) {
      path = a;
    } else {
      return usage();
    }
  }
  if (path == nullptr) return usage();
  if (lint) return runLint(path, werror, lintFormat, lintOptions);

  // Policies raced when --portfolio is active; a single entry otherwise.
  std::vector<symbolic::ImagePolicy> policies;
  if (imagePolicyArg == "both") {
    if (portfolio == 0) {
      std::fprintf(stderr,
                   "stsyn: --image-policy both requires --portfolio\n");
      return 2;
    }
    policies = {symbolic::ImagePolicy::Monolithic,
                symbolic::ImagePolicy::PerProcess};
  } else if (!imagePolicyArg.empty()) {
    const auto parsed = symbolic::parseImagePolicy(imagePolicyArg);
    if (!parsed.has_value()) {
      std::fprintf(stderr,
                   "stsyn: unknown --image-policy '%s' (expected "
                   "monolithic|perprocess|auto|both)\n",
                   imagePolicyArg.c_str());
      return 2;
    }
    options.imagePolicy = *parsed;
    policies = {*parsed};
  }

  symbolic::EncodingOptions encOptions;
  if (!varOrderArg.empty()) {
    const auto parsed = symbolic::parseVarOrder(varOrderArg);
    if (!parsed.has_value()) {
      std::fprintf(stderr,
                   "stsyn: unknown --var-order '%s' (expected "
                   "declared|static)\n",
                   varOrderArg.c_str());
      return 2;
    }
    encOptions.varOrder = *parsed;
  }
  if (orbitPrune && portfolio == 0) {
    std::fprintf(stderr, "stsyn: --orbit-prune requires --portfolio\n");
    return 2;
  }
  if (!report.tracePath.empty()) obs::Tracer::global().enable();

  protocol::Protocol p;
  try {
    p = lang::parseProtocolFile(path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "stsyn: %s\n", e.what());
    return 2;
  }
  if (print) std::printf("%s\n", lang::printProtocol(p).c_str());

  symbolic::Encoding enc(p, encOptions);
  symbolic::SymbolicProtocol sp(enc);
  std::printf("protocol %s: %zu processes, %.0f states, %.0f legitimate\n",
              p.name.c_str(), p.processCount(), p.stateCount(),
              enc.countStates(sp.invariant()));
  report.protoName = p.name;
  report.haveProtocol = true;
  report.processes = static_cast<double>(p.processCount());
  report.states = p.stateCount();
  report.legitimate = enc.countStates(sp.invariant());

  if (verifyOnly) {
    report.mode = "verify";
    const verify::Report rep = verify::check(sp, sp.protocolRelation());
    std::printf("closure of I:        %s\n", rep.closed ? "yes" : "NO");
    std::printf("deadlock-free in ~I: %s (%.0f deadlocks)\n",
                rep.deadlockFree ? "yes" : "NO",
                enc.countStates(rep.deadlocks));
    std::printf("cycle-free in ~I:    %s (%zu non-progress components)\n",
                rep.cycleFree ? "yes" : "NO", rep.cycles.size());
    std::printf("weakly converges:    %s\n",
                rep.weaklyConverges ? "yes" : "NO");
    std::printf("verdict: %s\n",
                rep.stronglyStabilizing()
                    ? "STRONGLY SELF-STABILIZING"
                    : "NOT self-stabilizing");
    if (!rep.closed) {
      const bdd::Bdd escape =
          sp.protocolRelation() & sp.invariant() &
          sp.onNext(enc.validCur() & !sp.invariant());
      const auto [s0, s1] = sp.pickTransition(escape);
      std::printf("closure violation: %s --> %s\n",
                  verify::formatState(p, s0).c_str(),
                  verify::formatState(p, s1).c_str());
    }
    if (!rep.deadlockFree) {
      std::printf("example deadlock: %s\n",
                  verify::formatState(p, sp.pickState(rep.deadlocks))
                      .c_str());
    }
    if (!rep.cycleFree) {
      std::vector<bdd::Bdd> perProcess;
      for (std::size_t j = 0; j < sp.processCount(); ++j) {
        perProcess.push_back(sp.processRelation(j));
      }
      const auto cycle = verify::extractCycle(
          sp, sp.protocolRelation(), rep.cycles.front(), perProcess);
      std::printf("non-progress cycle (schedule %s):\n%s\n",
                  verify::cycleSchedule(p, cycle).c_str(),
                  verify::formatCycle(p, cycle).c_str());
    }
    report.success = report.verified = rep.stronglyStabilizing();
    return rep.stronglyStabilizing() ? 0 : 1;
  }

  if (!verify::isClosed(sp, sp.protocolRelation(), sp.invariant())) {
    std::fprintf(stderr,
                 "stsyn: the invariant is not closed in the input protocol "
                 "(Problem III.1 requires closure)\n");
    return 1;
  }

  if (weak) {
    report.mode = "weak";
    const core::WeakResult w = core::addWeakConvergence(
        sp, options.imagePolicy, options.imageWorkers);
    report.stats = w.stats;
    report.haveStats = true;
    report.success = report.verified = w.success;
    if (!w.success) {
      report.failure = "rank-infinity states exist";
      std::printf("weak convergence: IMPOSSIBLE — %.0f states can never "
                  "reach the invariant\n",
                  enc.countStates(w.rankInfinityStates));
      return 1;
    }
    std::printf("weak convergence added: M = %zu ranks, %s\n",
                w.ranking.maxRank(), w.stats.summary().c_str());
    std::printf("rank histogram (states at recovery distance i):\n");
    for (std::size_t i = 0; i < w.ranking.ranks.size(); ++i) {
      std::printf("  Rank[%zu]: %.0f states\n", i,
                  enc.countStates(w.ranking.ranks[i]));
    }
    return 0;
  }

  if (!scheduleArg.empty() &&
      !parseSchedule(scheduleArg, p, options.schedule)) {
    return 2;
  }

  if (portfolio > 0) {
    report.mode = "portfolio";
    std::vector<core::Schedule> schedules;
    for (std::size_t rot = 0; rot < p.processCount(); ++rot) {
      schedules.push_back(core::rotatedSchedule(p.processCount(), rot));
    }
    core::PortfolioOptions popt;
    popt.threads = portfolio;
    popt.policies = policies;
    popt.imageWorkers = options.imageWorkers;
    popt.encoding = encOptions;
    popt.orbitPrune = orbitPrune;
    const core::PortfolioResult pr =
        core::synthesizePortfolio(p, schedules, popt);
    report.havePortfolio = true;
    report.portfolioWinner = pr.winner;
    report.portfolioWallSeconds = pr.wallSeconds;
    report.portfolioOrbitPrune = orbitPrune;
    report.portfolioSymmetryOrbits = pr.symmetryOrbits;
    report.portfolioSchedulesPruned = pr.schedulesPruned();
    for (const core::PortfolioInstance& inst : pr.instances) {
      report.portfolioRows.push_back({core::toString(inst.schedule),
                                      symbolic::toString(inst.imagePolicy),
                                      inst.ran, inst.result.success,
                                      inst.pruned,
                                      inst.result.stats.passCompleted,
                                      inst.wallSeconds});
    }
    if (orbitPrune) {
      std::printf("orbit pruning: %zu symmetry orbits, %zu of %zu schedule "
                  "instances pruned\n",
                  pr.symmetryOrbits, pr.schedulesPruned(),
                  pr.instances.size());
    }
    if (const core::SynthesisStats* ws = pr.winnerStats()) {
      report.stats = *ws;
      report.haveStats = true;
    }
    if (!pr.success()) {
      report.failure = "all schedules failed";
      std::printf("portfolio synthesis FAILED for all %zu schedules\n",
                  schedules.size());
      return 1;
    }
    const auto& win = pr.instances[pr.winner];
    const verify::Report rep =
        verify::check(*win.symbolic, win.result.relation);
    std::printf("portfolio: schedule %s won (policy %s, pass %d),"
                " verified=%s\n"
                "  %zu of %zu instances ran, wall %.3fs\n  %s\n",
                core::toString(win.schedule).c_str(),
                symbolic::toString(win.imagePolicy),
                win.result.stats.passCompleted,
                rep.stronglyStabilizing() ? "yes" : "NO",
                pr.instancesRun(), pr.instances.size(), pr.wallSeconds,
                win.result.stats.summary().c_str());
    report.success = report.verified = rep.stronglyStabilizing();
    if (!quiet) {
      for (const auto& pa : extraction::extractAllActions(
               *win.symbolic, win.result.addedPerProcess)) {
        std::printf("%s", extraction::formatActions(p, pa).c_str());
      }
    }
    return rep.stronglyStabilizing() ? 0 : 1;
  }

  const core::StrongResult r = core::addStrongConvergence(sp, options);
  report.stats = r.stats;
  report.haveStats = true;
  report.success = r.success;
  if (!r.success) {
    report.failure = core::toString(r.failure);
    std::printf("synthesis FAILED: %s (remaining deadlocks: %.0f)\n",
                core::toString(r.failure),
                enc.countStates(r.remainingDeadlocks));
    if (explain) {
      const core::Diagnosis d = core::diagnose(sp, r);
      std::printf("%s", d.summary(p).c_str());
    }
    return 1;
  }
  const verify::Report rep = verify::check(sp, r.relation);
  report.verified = rep.stronglyStabilizing();
  std::printf("synthesis succeeded: pass %d, verified strongly "
              "stabilizing=%s\n  %s\n  worst-case recovery: %zu steps\n",
              r.stats.passCompleted, rep.stronglyStabilizing() ? "yes" : "NO",
              r.stats.summary().c_str(),
              core::recoveryDepth(sp, r.relation));
  std::printf("  rank histogram:");
  for (std::size_t i = 0; i < r.ranking.ranks.size(); ++i) {
    std::printf(" %zu:%.0f", i, enc.countStates(r.ranking.ranks[i]));
  }
  std::printf("\n");
  if (!quiet) {
    std::printf("\nadded recovery actions:\n");
    for (const auto& pa :
         extraction::extractAllActions(sp, r.addedPerProcess)) {
      std::printf("%s", extraction::formatActions(p, pa).c_str());
    }
  }
  if (!outputPath.empty()) {
    const protocol::Protocol stabilized =
        extraction::toProtocol(sp, r.addedPerProcess);
    std::ofstream out(outputPath);
    if (!out) {
      std::fprintf(stderr, "stsyn: cannot write %s\n", outputPath.c_str());
      return 2;
    }
    out << "# generated by stsyn: " << p.name
        << " with synthesized convergence\n"
        << lang::printProtocol(stabilized);
    std::printf("wrote stabilizing protocol to %s\n", outputPath.c_str());
  }
  return rep.stronglyStabilizing() ? 0 : 1;
}
