// Message-passing refinement demo (paper Section II's model justification):
// refine Dijkstra's self-stabilizing token ring to single-writer regular
// registers with heartbeats, corrupt EVERYTHING — variables, caches,
// in-flight messages — and watch it recover.
//
//   ./message_passing_demo [processes] [domain] [trials]
#include <cstdio>
#include <cstdlib>

#include "stsyn.hpp"

int main(int argc, char** argv) {
  using namespace stsyn;
  const int k = argc > 1 ? std::atoi(argv[1]) : 5;
  const int d = argc > 2 ? std::atoi(argv[2]) : 5;
  const std::size_t trials =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 2000;

  std::printf("=== message-passing refinement of Dijkstra's token ring "
              "(%d processes, domain %d) ===\n\n", k, d);

  const protocol::Protocol p = casestudies::dijkstraTokenRing(k, d);
  const refinement::MessagePassingSystem sys(p);

  std::printf("refinement: every x_j owned by P%c, successors cache it, "
              "single-slot\nchannels with overwrite semantics, heartbeats "
              "repair stale caches\n\n", 'j');

  // One illustrated recovery.
  util::Rng rng(42);
  refinement::Configuration c = sys.randomConfiguration(rng);
  std::printf("corrupted start: owned=<");
  for (std::size_t v = 0; v < c.owned.size(); ++v) {
    std::printf("%s%d", v ? "," : "", c.owned[v]);
  }
  std::printf(">, coherent=%s, legitimate=%s\n",
              sys.coherent(c) ? "yes" : "no",
              sys.legitimate(c) ? "yes" : "no");
  const auto run = refinement::simulateRefined(sys, c, rng, 1000000);
  std::printf("recovered after %zu events: %s\n\n", run.steps,
              run.converged ? "legitimate and coherent" : "FAILED");

  // Statistics over many corrupted configurations.
  std::size_t converged = 0;
  double totalSteps = 0;
  std::size_t worst = 0;
  for (std::size_t t = 0; t < trials; ++t) {
    const auto r = refinement::simulateRefined(
        sys, sys.randomConfiguration(rng), rng, 1000000);
    if (r.converged) {
      ++converged;
      totalSteps += static_cast<double>(r.steps);
      worst = std::max(worst, r.steps);
    }
  }
  std::printf("fault injection: %zu/%zu corrupted configurations recovered "
              "(mean %.1f events, max %zu)\n",
              converged, trials,
              converged ? totalSteps / static_cast<double>(converged) : 0.0,
              worst);
  return converged == trials ? 0 : 1;
}
