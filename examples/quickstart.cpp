// Quickstart: add strong convergence to Dijkstra's (non-stabilizing) token
// ring and watch the tool re-derive Dijkstra's self-stabilizing protocol —
// the paper's headline result (Section V).
//
//   ./quickstart [processes] [domain]     (defaults: 4 3, as in the paper)
#include <cstdio>
#include <cstdlib>

#include "stsyn.hpp"

int main(int argc, char** argv) {
  using namespace stsyn;
  const int k = argc > 1 ? std::atoi(argv[1]) : 4;
  const int d = argc > 2 ? std::atoi(argv[2]) : 3;

  std::printf("=== stsyn quickstart: token ring, %d processes, domain %d ===\n\n",
              k, d);

  // 1. The non-stabilizing input protocol.
  const protocol::Protocol p = casestudies::tokenRing(k, d);
  symbolic::Encoding enc(p);
  symbolic::SymbolicProtocol sp(enc);
  std::printf("state space         : %.0f states\n", p.stateCount());
  std::printf("legitimate states S1: %.0f states\n",
              enc.countStates(sp.invariant()));

  const verify::Report before = verify::check(sp, sp.protocolRelation());
  std::printf("input protocol      : closed=%s, deadlocks outside S1=%.0f\n\n",
              before.closed ? "yes" : "NO",
              enc.countStates(before.deadlocks));

  // 2. Add strong convergence with the paper's recovery schedule
  //    (P1, ..., P_{k-1}, P0).
  core::StrongOptions opt;
  opt.schedule = core::rotatedSchedule(static_cast<std::size_t>(k), 1);
  const core::StrongResult r = core::addStrongConvergence(sp, opt);
  if (!r.success) {
    std::printf("synthesis FAILED: %s\n", core::toString(r.failure));
    return 1;
  }
  std::printf("synthesis succeeded in pass %d\n", r.stats.passCompleted);
  std::printf("  %s\n\n", r.stats.summary().c_str());

  // 3. Correct by construction — but re-verify anyway.
  const verify::Report after = verify::check(sp, r.relation);
  std::printf("verification        : strongly stabilizing=%s, "
              "delta|I preserved=%s\n\n",
              after.stronglyStabilizing() ? "yes" : "NO",
              verify::agreesInsideInvariant(sp, sp.protocolRelation(),
                                            r.relation)
                  ? "yes"
                  : "NO");

  // 4. The recovery actions the heuristic added, as guarded commands.
  std::printf("added recovery actions:\n");
  for (const auto& pa : extraction::extractAllActions(sp, r.addedPerProcess)) {
    std::printf("%s", extraction::formatActions(p, pa).c_str());
  }

  if (k == 4 && d == 3) {
    const protocol::Protocol dijkstra = casestudies::dijkstraTokenRing(4, 3);
    symbolic::Encoding enc2(dijkstra);
    symbolic::SymbolicProtocol sp2(enc2);
    const bool same =
        symbolic::decodeRelation(enc, r.relation) ==
        symbolic::decodeRelation(enc2, sp2.protocolRelation());
    std::printf("\nsynthesized protocol == Dijkstra's token ring: %s\n",
                same ? "YES" : "no (alternative solution)");
  }
  return 0;
}
