// Three coloring on a ring (paper Section VI-B): synthesize a strongly
// stabilizing protocol, print its actions, then inject transient faults
// and watch the explicit-state simulator drive recovery.
//
//   ./coloring_demo [processes] [trials]   (defaults: 8, 1000)
#include <cstdio>
#include <cstdlib>

#include "stsyn.hpp"

int main(int argc, char** argv) {
  using namespace stsyn;
  const int k = argc > 1 ? std::atoi(argv[1]) : 8;
  const std::size_t trials = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                                      : 1000;

  std::printf("=== three coloring on a %d-ring ===\n\n", k);

  const protocol::Protocol p = casestudies::coloring(k);
  symbolic::Encoding enc(p);
  symbolic::SymbolicProtocol sp(enc);
  std::printf("proper colorings: %.0f of %.0f states\n",
              enc.countStates(sp.invariant()), p.stateCount());

  const auto local = explicitstate::analyzeLocalCorrectability(p);
  std::printf("locally correctable: %s\n\n",
              explicitstate::toString(local.verdict));

  const core::StrongResult r = core::addStrongConvergence(sp);
  if (!r.success) {
    std::printf("synthesis failed: %s\n", core::toString(r.failure));
    return 1;
  }
  std::printf("synthesis: pass %d, %s\n", r.stats.passCompleted,
              r.stats.summary().c_str());
  std::printf("  (SCC fast-path proofs of acyclicity: %zu — coloring forms "
              "no cycles,\n   exactly as the paper reports)\n\n",
              r.stats.sccFastPathHits);

  const verify::Report rep = verify::check(sp, r.relation);
  std::printf("verified strongly stabilizing: %s\n\n",
              rep.stronglyStabilizing() ? "yes" : "NO");

  // Print two representative processes (the paper prints P1 and a generic
  // P_i; solutions may be asymmetric at the wrap-around).
  const auto actions = extraction::extractAllActions(sp, r.addedPerProcess);
  std::printf("%s", extraction::formatActions(p, actions[1]).c_str());
  std::printf("%s\n",
              extraction::formatActions(p, actions[k / 2]).c_str());

  // Fault injection: drop the ring into uniformly random states and run
  // the synthesized protocol under a random scheduler.
  if (p.stateCount() <= 67108864.0) {
    const explicitstate::StateSpace space(p);
    std::vector<std::pair<explicitstate::StateId, explicitstate::StateId>>
        edges;
    for (const auto& [from, to] :
         symbolic::decodeRelation(enc, r.relation)) {
      edges.emplace_back(from, to);
    }
    const auto ts = explicitstate::fromEdges(space, edges);
    util::Rng rng(2026);
    const auto stats = explicitstate::convergenceExperiment(
        space, ts, rng, trials, 100000);
    std::printf("fault injection: %zu random faults, %zu recovered "
                "(mean %.1f steps, max %zu)\n",
                stats.trials, stats.converged, stats.meanSteps,
                stats.maxSteps);
  } else {
    std::printf("(state space too large for explicit simulation)\n");
  }
  return 0;
}
