// Reproduces the paper's Section VI-A findings on maximal matching:
//
//   1. the manually designed Gouda–Acharya protocol (as printed in the
//      paper) FAILS verification — our tool pinpoints concrete flaws;
//   2. synthesis from the empty protocol produces a correct, verified
//      strongly stabilizing matching protocol (asymmetric, as the paper
//      observes), whose actions we print like the paper prints P0's.
//
//   ./matching_flaw [processes]           (default: 5, as in the paper)
#include <cstdio>
#include <cstdlib>

#include "stsyn.hpp"

namespace {

std::string pointer(stsyn::protocol::VarId, int v) {
  return stsyn::casestudies::pointerName(v);
}

void diagnose(const stsyn::protocol::Protocol& p, const char* title) {
  using namespace stsyn;
  symbolic::Encoding enc(p);
  symbolic::SymbolicProtocol sp(enc);
  const bdd::Bdd rel = sp.protocolRelation();
  const verify::Report rep = verify::check(sp, rel);
  std::printf("--- %s ---\n", title);
  std::printf("closed in IMM: %s, deadlock-free: %s, cycle-free: %s\n",
              rep.closed ? "yes" : "NO", rep.deadlockFree ? "yes" : "NO",
              rep.cycleFree ? "yes" : "NO");
  if (!rep.closed) {
    // Show one escaping step: a transition from IMM that leaves IMM.
    const bdd::Bdd escape =
        rel & sp.invariant() &
        sp.onNext(enc.validCur() & !sp.invariant());
    const auto [s0, s1] = sp.pickTransition(escape);
    std::printf("closure violation: from legitimate state\n  %s\n"
                "a step leads outside IMM to\n  %s\n",
                verify::formatState(p, s0, pointer).c_str(),
                verify::formatState(p, s1, pointer).c_str());
  }
  if (rep.deadlockFree && !rep.cycleFree) {
    const auto cycle = verify::extractCycle(
        sp, rel, rep.cycles.front(),
        [&] {
          std::vector<bdd::Bdd> per;
          for (std::size_t j = 0; j < sp.processCount(); ++j) {
            per.push_back(sp.processRelation(j));
          }
          return per;
        }());
    std::printf("non-progress cycle (schedule %s):\n%s\n",
                verify::cycleSchedule(p, cycle).c_str(),
                verify::formatCycle(p, cycle, pointer).c_str());
  }
  if (!rep.deadlockFree) {
    const auto dead = sp.pickState(rep.deadlocks);
    std::printf("deadlock outside IMM, e.g. %s\n",
                verify::formatState(p, dead, pointer).c_str());
  }
  std::printf("verdict: %s\n\n", rep.stronglyStabilizing()
                                     ? "strongly stabilizing"
                                     : "NOT self-stabilizing");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace stsyn;
  const int k = argc > 1 ? std::atoi(argv[1]) : 5;

  std::printf("=== maximal matching on a %d-ring: manual designs vs "
              "synthesis ===\n\n", k);

  diagnose(casestudies::matchingGoudaAcharyaAsPrinted(k),
           "Gouda-Acharya actions exactly as printed in the paper");
  diagnose(casestudies::matchingGoudaAcharyaRepaired(k),
           "Gouda-Acharya actions with the natural guard repair");

  std::printf("--- synthesized from the empty protocol ---\n");
  const protocol::Protocol p = casestudies::matching(k);
  symbolic::Encoding enc(p);
  symbolic::SymbolicProtocol sp(enc);
  const core::StrongResult r = core::addStrongConvergence(sp);
  if (!r.success) {
    std::printf("synthesis failed: %s\n", core::toString(r.failure));
    return 1;
  }
  const verify::Report rep = verify::check(sp, r.relation);
  std::printf("synthesis succeeded (pass %d, %s)\n", r.stats.passCompleted,
              r.stats.summary().c_str());
  std::printf("verified strongly stabilizing: %s\n\n",
              rep.stronglyStabilizing() ? "yes" : "NO");

  // The paper prints P0's actions of its synthesized 5-process protocol and
  // notes the solution is asymmetric; print every process to show it.
  const auto actions = extraction::extractAllActions(sp, r.addedPerProcess);
  for (const auto& pa : actions) {
    std::printf("%s", extraction::formatActions(p, pa, pointer).c_str());
  }

  // Section VIII: the paper observes the synthesized matching is
  // asymmetric while the manual design is symmetric — decided mechanically
  // here.
  const auto sym = extraction::analyzeRotationalSymmetry(sp,
                                                         r.addedPerProcess);
  std::printf("\nsymmetry: %zu equivalence classes among %d processes "
              "(%s)\n",
              sym.classCount, k,
              sym.symmetric() ? "symmetric" : "asymmetric, as the paper "
                                              "observes");

  // The paper leaves "heuristics that enforce symmetry" as future work;
  // the template-level synthesizer provides one:
  const explicitstate::StateSpace space(p);
  const auto symResult = explicitstate::addSymmetricConvergence(space);
  if (symResult.success) {
    const auto ts = explicitstate::fromEdges(space, symResult.relation);
    std::printf("symmetry-enforcing synthesis: SUCCESS (pass %d, verified "
                "%s, rotation-invariant %s, %zu recovery transitions)\n",
                symResult.passCompleted,
                explicitstate::check(space, ts).stronglyStabilizing()
                    ? "yes" : "NO",
                explicitstate::isRotationInvariant(space, symResult.relation)
                    ? "yes" : "NO",
                symResult.added.size());
  } else {
    std::printf("symmetry-enforcing synthesis: failed (%s)\n",
                explicitstate::toString(symResult.failure));
  }
  return 0;
}
