// The paper reports that STSyn generated "3 different versions" of
// Dijkstra's token ring. This example reproduces that observation: it runs
// a schedule portfolio (the paper's Figure 1 — one heuristic instance per
// recovery schedule, here on worker threads), deduplicates the verified
// solutions, and prints each distinct protocol's recovery actions.
//
//   ./alternative_solutions [processes] [domain] [threads]
#include <cstdio>
#include <cstdlib>
#include <map>

#include "stsyn.hpp"

int main(int argc, char** argv) {
  using namespace stsyn;
  const int k = argc > 1 ? std::atoi(argv[1]) : 4;
  const int d = argc > 2 ? std::atoi(argv[2]) : 3;
  const unsigned threads =
      argc > 3 ? static_cast<unsigned>(std::atoi(argv[3])) : 0;

  std::printf("=== alternative stabilizing token rings, %d processes, "
              "domain %d ===\n\n", k, d);

  const protocol::Protocol p = casestudies::tokenRing(k, d);
  const std::vector<core::Schedule> schedules =
      k <= 5 ? core::allSchedules(static_cast<std::size_t>(k))
             : std::vector<core::Schedule>{core::identitySchedule(
                   static_cast<std::size_t>(k))};
  std::printf("running %zu schedules (%u threads)...\n", schedules.size(),
              threads);

  const core::PortfolioResult result =
      core::synthesizePortfolio(p, schedules, threads);
  if (!result.success()) {
    std::printf("no schedule produced a stabilizing version\n");
    return 1;
  }

  // Deduplicate by the decoded transition set.
  std::map<std::vector<symbolic::ExplicitTransition>, std::size_t> distinct;
  std::map<std::size_t, std::size_t> representative;  // solution -> instance
  std::size_t successes = 0;
  for (std::size_t i = 0; i < result.instances.size(); ++i) {
    const auto& inst = result.instances[i];
    if (!inst.result.success) continue;
    ++successes;
    const auto rel =
        symbolic::decodeRelation(*inst.encoding, inst.result.relation);
    const auto [it, inserted] = distinct.emplace(rel, distinct.size() + 1);
    if (inserted) representative[it->second] = i;
  }
  std::printf("%zu/%zu schedules succeeded, %zu DISTINCT stabilizing "
              "protocols (the paper reports 3 versions)\n\n",
              successes, result.instances.size(), distinct.size());

  for (const auto& [solution, index] : representative) {
    const auto& inst = result.instances[index];
    const verify::Report rep =
        verify::check(*inst.symbolic, inst.result.relation);
    std::printf("--- solution #%zu (schedule %s, verified=%s) ---\n",
                solution, core::toString(inst.schedule).c_str(),
                rep.stronglyStabilizing() ? "yes" : "NO");
    const auto actions = extraction::extractAllActions(
        *inst.symbolic, inst.result.addedPerProcess);
    for (const auto& pa : actions) {
      std::printf("%s", extraction::formatActions(p, pa).c_str());
    }
    std::printf("\n");
  }
  return 0;
}
