// The paper's lightweight method end to end (Figure 1): start from small
// instances of a protocol family and inductively increase the number of
// processes as long as the computational budget permits, collecting the
// outcome and cost of every instance.
//
//   ./lightweight_method [family] [budget-seconds]
//     family: coloring (default) | matching | tokenring
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <iostream>

#include "stsyn.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace stsyn;
  const char* family = argc > 1 ? argv[1] : "coloring";
  const double budget = argc > 2 ? std::atof(argv[2]) : 20.0;

  core::ScaleOptions opt;
  opt.budgetSeconds = budget;
  std::function<protocol::Protocol(int)> make;
  if (!std::strcmp(family, "coloring")) {
    opt.kMin = 3;
    opt.kMax = 60;
    make = [](int k) { return casestudies::coloring(k); };
  } else if (!std::strcmp(family, "matching")) {
    opt.kMin = 3;
    opt.kMax = 16;
    make = [](int k) { return casestudies::matching(k); };
  } else if (!std::strcmp(family, "tokenring")) {
    opt.kMin = 2;
    opt.kMax = 8;
    opt.schedule = [](int k) {
      return core::rotatedSchedule(static_cast<std::size_t>(k), 1);
    };
    make = [](int k) { return casestudies::tokenRing(k, 4); };
  } else {
    std::fprintf(stderr, "unknown family %s\n", family);
    return 2;
  }

  std::printf("=== the lightweight method on '%s' (budget %.0fs) ===\n\n",
              family, budget);
  const core::ScaleResult result = core::scaleUp(make, opt);

  util::Table table({"k", "outcome", "pass", "total_s", "M",
                     "program_nodes"});
  for (const core::ScaleInstance& inst : result.instances) {
    table.addRow({std::to_string(inst.k),
                  inst.success ? "synthesized" : core::toString(inst.failure),
                  std::to_string(inst.stats.passCompleted),
                  util::Table::cell(inst.stats.totalSeconds),
                  util::Table::cell(inst.stats.rankCount),
                  util::Table::cell(inst.stats.programNodes)});
  }
  table.printAligned(std::cout);
  std::printf("\nlargest instance solved: %d processes%s\n",
              result.largestSolved(),
              result.stoppedOnBudget ? " (stopped on budget)" : "");
  return result.largestSolved() > 0 ? 0 : 1;
}
