// The Two-Ring Token Ring TR² (paper Section VI-C): a non-ring topology
// with 8 processes on two coupled rings. Demonstrates closure of the
// legitimate circulation, the effect of transient faults, synthesis of the
// strongly stabilizing version, and recovery simulation.
//
//   ./two_ring_demo [domain]               (default: 4, as in the paper)
#include <cstdio>
#include <cstdlib>

#include "stsyn.hpp"

int main(int argc, char** argv) {
  using namespace stsyn;
  const int d = argc > 1 ? std::atoi(argv[1]) : 4;

  std::printf("=== two-ring token ring (TR^2), |D| = %d ===\n\n", d);

  const protocol::Protocol p = casestudies::twoRing(d);
  symbolic::Encoding enc(p);
  symbolic::SymbolicProtocol sp(enc);
  std::printf("8 processes on two coupled 4-rings, %.0f states, "
              "%.0f legitimate\n",
              p.stateCount(), enc.countStates(sp.invariant()));

  // Show one legitimate circulation round.
  const explicitstate::StateSpace space(p);
  const auto ts = explicitstate::buildTransitions(space);
  std::vector<int> s(p.varCount(), 0);
  s.back() = 1;  // turn = ring A
  std::printf("\none circulation round from %s:\n",
              verify::formatState(p, s).c_str());
  explicitstate::StateId cur = space.pack(s);
  for (int step = 0; step < 8; ++step) {
    const auto& out = ts.succ[cur];
    if (out.size() != 1) break;
    std::printf("  --%s--> ", p.processes[out[0].second].name.c_str());
    cur = out[0].first;
    std::printf("%s\n", verify::formatState(p, space.unpack(cur)).c_str());
  }

  const verify::Report before = verify::check(sp, sp.protocolRelation());
  std::printf("\nnon-stabilizing TR^2: closed=%s, deadlocks under transient "
              "faults=%.0f\n\n",
              before.closed ? "yes" : "NO",
              enc.countStates(before.deadlocks));

  const core::StrongResult r = core::addStrongConvergence(sp);
  if (!r.success) {
    std::printf("synthesis failed: %s\n", core::toString(r.failure));
    return 1;
  }
  std::printf("synthesis: pass %d, %s\n", r.stats.passCompleted,
              r.stats.summary().c_str());
  const verify::Report rep = verify::check(sp, r.relation);
  std::printf("verified strongly stabilizing: %s\n",
              rep.stronglyStabilizing() ? "yes" : "NO");

  // Recovery from a fault-corrupted state.
  std::vector<std::pair<explicitstate::StateId, explicitstate::StateId>>
      edges;
  for (const auto& [from, to] : symbolic::decodeRelation(enc, r.relation)) {
    edges.emplace_back(from, to);
  }
  const auto tss = explicitstate::fromEdges(space, edges);
  util::Rng rng(7);
  const auto stats =
      explicitstate::convergenceExperiment(space, tss, rng, 2000, 100000);
  std::printf("\nfault injection: %zu random faults, %zu recovered "
              "(mean %.1f steps, max %zu)\n",
              stats.trials, stats.converged, stats.meanSteps,
              stats.maxSteps);
  return 0;
}
